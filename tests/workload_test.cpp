#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/encoder.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_gen.hpp"
#include "workload/zipf.hpp"

namespace bes {
namespace {

TEST(SceneGen, RespectsCountAndDomain) {
  rng r(1);
  alphabet names;
  scene_params params;
  params.width = 100;
  params.height = 80;
  params.object_count = 15;
  params.max_extent = 30;
  const symbolic_image scene = random_scene(params, r, names);
  EXPECT_EQ(scene.size(), 15u);
  for (const icon& obj : scene.icons()) {
    EXPECT_GE(obj.mbr.x.lo, 0);
    EXPECT_LE(obj.mbr.x.hi, 100);
    EXPECT_GE(obj.mbr.y.lo, 0);
    EXPECT_LE(obj.mbr.y.hi, 80);
    EXPECT_GE(obj.mbr.x.length(), params.min_extent);
    EXPECT_LE(obj.mbr.x.length(), params.max_extent);
  }
}

TEST(SceneGen, DeterministicGivenSeed) {
  alphabet names1;
  alphabet names2;
  rng r1(42);
  rng r2(42);
  scene_params params;
  EXPECT_EQ(random_scene(params, r1, names1), random_scene(params, r2, names2));
}

TEST(SceneGen, DisjointModeProducesDisjointScenes) {
  rng r(2);
  alphabet names;
  scene_params params;
  params.object_count = 10;
  params.max_extent = 20;
  params.disjoint = true;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(random_scene(params, r, names).disjoint());
  }
}

TEST(SceneGen, DisjointImpossibleThrows) {
  rng r(3);
  alphabet names;
  scene_params params;
  params.width = 16;
  params.height = 16;
  params.min_extent = 12;
  params.max_extent = 16;
  params.object_count = 10;  // cannot fit 10 disjoint 12x12 in 16x16
  params.disjoint = true;
  EXPECT_THROW((void)random_scene(params, r, names), std::runtime_error);
}

TEST(SceneGen, UniqueSymbolsDistinct) {
  rng r(4);
  alphabet names;
  scene_params params;
  params.object_count = 9;
  params.symbol_pool = 9;
  params.unique_symbols = true;
  const symbolic_image scene = random_scene(params, r, names);
  std::vector<symbol_id> symbols;
  for (const icon& obj : scene.icons()) symbols.push_back(obj.symbol);
  std::sort(symbols.begin(), symbols.end());
  EXPECT_EQ(std::adjacent_find(symbols.begin(), symbols.end()), symbols.end());
}

TEST(SceneGen, UniqueSymbolsNeedsBigPool) {
  rng r(5);
  alphabet names;
  scene_params params;
  params.object_count = 5;
  params.symbol_pool = 3;
  params.unique_symbols = true;
  EXPECT_THROW((void)random_scene(params, r, names), std::invalid_argument);
}

TEST(SceneGen, GridModeSnapsBoundaries) {
  rng r(6);
  alphabet names;
  scene_params params;
  params.object_count = 12;
  params.grid = 16;
  const symbolic_image scene = random_scene(params, r, names);
  for (const icon& obj : scene.icons()) {
    EXPECT_EQ(obj.mbr.x.lo % 16, 0);
    EXPECT_EQ(obj.mbr.y.lo % 16, 0);
    EXPECT_EQ(obj.mbr.x.length() % 16, 0);
  }
}

TEST(SceneGen, GridScenesCompressBetter) {
  // Grid alignment produces coincident boundaries, shrinking the BE-string.
  alphabet names;
  rng r1(7);
  rng r2(7);
  scene_params loose;
  loose.object_count = 30;
  scene_params grid = loose;
  grid.grid = 32;
  const auto s_loose = encode(random_scene(loose, r1, names));
  const auto s_grid = encode(random_scene(grid, r2, names));
  EXPECT_LT(s_grid.total_tokens(), s_loose.total_tokens());
}

TEST(SceneGen, ZeroObjects) {
  rng r(8);
  alphabet names;
  scene_params params;
  params.object_count = 0;
  EXPECT_TRUE(random_scene(params, r, names).empty());
}

TEST(SceneGen, BadExtentsThrow) {
  rng r(9);
  alphabet names;
  scene_params params;
  params.min_extent = 10;
  params.max_extent = 5;
  EXPECT_THROW((void)random_scene(params, r, names), std::invalid_argument);
  scene_params huge;
  huge.max_extent = 10000;
  EXPECT_THROW((void)random_scene(huge, r, names), std::invalid_argument);
}

// ---------------------------------------------------------------- distort

TEST(QueryGen, KeepFractionBounds) {
  rng r(10);
  alphabet names;
  scene_params params;
  params.object_count = 10;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;
  d.keep_fraction = 0.5;
  const symbolic_image query = distort(scene, d, r, names);
  EXPECT_EQ(query.size(), 5u);
}

TEST(QueryGen, KeepFractionAtLeastOne) {
  rng r(11);
  alphabet names;
  symbolic_image scene(32, 32);
  scene.add(names.intern("A"), rect::checked(0, 4, 0, 4));
  distortion_params d;
  d.keep_fraction = 0.01;
  EXPECT_EQ(distort(scene, d, r, names).size(), 1u);
}

TEST(QueryGen, RejectsBadKeepFraction) {
  rng r(12);
  alphabet names;
  symbolic_image scene(32, 32);
  scene.add(names.intern("A"), rect::checked(0, 4, 0, 4));
  distortion_params d;
  d.keep_fraction = 0.0;
  EXPECT_THROW((void)distort(scene, d, r, names), std::invalid_argument);
  d.keep_fraction = 1.5;
  EXPECT_THROW((void)distort(scene, d, r, names), std::invalid_argument);
}

TEST(QueryGen, JitterPreservesSizeAndDomain) {
  rng r(13);
  alphabet names;
  scene_params params;
  params.object_count = 8;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;
  d.jitter = 10;
  const symbolic_image query = distort(scene, d, r, names);
  ASSERT_EQ(query.size(), scene.size());
  // Sizes preserved (order of kept icons follows original order).
  for (std::size_t i = 0; i < query.size(); ++i) {
    EXPECT_EQ(query.icons()[i].mbr.x.length(),
              scene.icons()[i].mbr.x.length());
    EXPECT_EQ(query.icons()[i].mbr.y.length(),
              scene.icons()[i].mbr.y.length());
    EXPECT_GE(query.icons()[i].mbr.x.lo, 0);
    EXPECT_LE(query.icons()[i].mbr.x.hi, scene.width());
  }
}

TEST(QueryGen, DecoysAdded) {
  rng r(14);
  alphabet names;
  scene_params params;
  params.object_count = 6;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;
  d.decoys = 3;
  d.decoy_shape.max_extent = 16;
  EXPECT_EQ(distort(scene, d, r, names).size(), 9u);
}

TEST(QueryGen, TransformChangesDomainConsistently) {
  rng r(15);
  alphabet names;
  scene_params params;
  params.width = 64;
  params.height = 32;
  params.object_count = 5;
  params.max_extent = 20;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;
  d.transform = dihedral::rot90;
  const symbolic_image query = distort(scene, d, r, names);
  EXPECT_EQ(query.width(), 32);
  EXPECT_EQ(query.height(), 64);
}

TEST(QueryGen, IdentityDistortionIsExactCopy) {
  rng r(16);
  alphabet names;
  scene_params params;
  params.object_count = 7;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;  // defaults: keep all, no jitter, no decoys
  const symbolic_image query = distort(scene, d, r, names);
  EXPECT_EQ(query, scene);
}

// ------------------------------------------------- seeded distort overload

symbolic_image base_scene_for_seeding(alphabet& names) {
  rng r(17);
  scene_params params;
  params.object_count = 10;
  return random_scene(params, r, names);
}

distortion_params every_knob(std::uint64_t seed) {
  distortion_params d;
  d.keep_fraction = 0.6;
  d.jitter = 12;
  d.relabel_fraction = 0.5;
  d.decoys = 3;
  d.decoy_shape.max_extent = 16;
  d.seed = seed;
  return d;
}

TEST(QueryGen, SeededOverloadIsDeterministicAcrossRuns) {
  alphabet names1;
  alphabet names2;
  const symbolic_image scene1 = base_scene_for_seeding(names1);
  const symbolic_image scene2 = base_scene_for_seeding(names2);
  EXPECT_EQ(distort(scene1, every_knob(99), names1),
            distort(scene2, every_knob(99), names2));
  // Different seed, different query (with overwhelming probability).
  EXPECT_NE(distort(scene1, every_knob(99), names1),
            distort(scene1, every_knob(100), names1));
}

TEST(QueryGen, SeededOverloadIgnoresOutsideRandomState) {
  // The seeded overload draws nothing from any shared stream: generating
  // unrelated randomness (as another thread's interleaved work would)
  // between calls cannot change the result — this is what makes corpora
  // identical across thread counts.
  alphabet names;
  const symbolic_image scene = base_scene_for_seeding(names);
  const symbolic_image first = distort(scene, every_knob(5), names);
  rng unrelated(123);
  for (int i = 0; i < 100; ++i) (void)unrelated.next_u64();
  EXPECT_EQ(distort(scene, every_knob(5), names), first);
}

TEST(QueryGen, KnobStreamsAreIsolated) {
  // Toggling decoys must not change which objects are kept, where they are
  // jittered to, or how they are relabeled: the non-decoy prefix of the
  // query is identical. (The legacy rng& overload cannot promise this.)
  alphabet names;
  const symbolic_image scene = base_scene_for_seeding(names);
  distortion_params with = every_knob(7);
  distortion_params without = every_knob(7);
  without.decoys = 0;
  const symbolic_image q_with = distort(scene, with, names);
  const symbolic_image q_without = distort(scene, without, names);
  ASSERT_EQ(q_with.size(), q_without.size() + 3);
  for (std::size_t i = 0; i < q_without.size(); ++i) {
    EXPECT_EQ(q_with.icons()[i], q_without.icons()[i]) << "icon " << i;
  }
  // Likewise jitter off/on leaves the kept symbols (keep + relabel streams)
  // unchanged.
  distortion_params no_jitter = every_knob(7);
  no_jitter.jitter = 0;
  no_jitter.decoys = 0;
  const symbolic_image q_still = distort(scene, no_jitter, names);
  ASSERT_EQ(q_still.size(), q_without.size());
  for (std::size_t i = 0; i < q_still.size(); ++i) {
    EXPECT_EQ(q_still.icons()[i].symbol, q_without.icons()[i].symbol);
  }
}

TEST(QueryGen, RelabelDrawsFromPool) {
  alphabet names;
  const symbolic_image scene = base_scene_for_seeding(names);
  distortion_params d;
  d.relabel_fraction = 1.0;
  d.relabel_pool = 4;
  d.seed = 3;
  const symbolic_image query = distort(scene, d, names);
  ASSERT_EQ(query.size(), scene.size());
  for (std::size_t i = 0; i < query.size(); ++i) {
    // Geometry untouched, symbol from S0..S3.
    EXPECT_EQ(query.icons()[i].mbr, scene.icons()[i].mbr);
    const std::string& name = names.name_of(query.icons()[i].symbol);
    EXPECT_TRUE(name == "S0" || name == "S1" || name == "S2" || name == "S3")
        << name;
  }
}

TEST(QueryGen, CorpusIdenticalAcrossRunsAndThreadCounts) {
  // A whole distorted-query corpus built through parallel_for is a pure
  // function of the seeds: identical across runs and worker counts. (The
  // eval subsystem builds its gated corpus exactly this way; eval_test pins
  // the same property end to end.)
  alphabet names;
  const symbolic_image scene = base_scene_for_seeding(names);
  // Pre-intern the relabel pool: lookups of existing names are safe from
  // worker threads, first-time interning is not.
  for (int i = 0; i < 8; ++i) names.intern("S" + std::to_string(i));
  auto build_corpus = [&](unsigned threads) {
    std::vector<symbolic_image> corpus(32, symbolic_image(1, 1));
    parallel_for(corpus.size(), threads, [&](std::size_t i) {
      distortion_params d = every_knob(derive_seed(42, i));
      d.decoys = 0;  // decoy scenes also draw from the pre-interned pool
      corpus[i] = distort(scene, d, names);
    });
    return corpus;
  };
  const std::vector<symbolic_image> serial = build_corpus(1);
  EXPECT_EQ(build_corpus(1), serial);  // two runs
  for (unsigned threads : {2u, 8u}) {
    EXPECT_EQ(build_corpus(threads), serial) << "threads=" << threads;
  }
}

TEST(QueryGen, RejectsBadRelabelParams) {
  alphabet names;
  symbolic_image scene(32, 32);
  scene.add(names.intern("A"), rect::checked(0, 4, 0, 4));
  distortion_params d;
  d.relabel_fraction = 1.5;
  EXPECT_THROW((void)distort(scene, d, names), std::invalid_argument);
  d.relabel_fraction = 0.5;
  d.relabel_pool = 0;
  EXPECT_THROW((void)distort(scene, d, names), std::invalid_argument);
}

// ------------------------------------------------ zipfian query streams

std::vector<symbolic_image> zipf_targets(alphabet& names, std::size_t count) {
  std::vector<symbolic_image> targets;
  rng r(7);
  scene_params params;
  params.object_count = 6;
  for (std::size_t i = 0; i < count; ++i) {
    targets.push_back(random_scene(params, r, names));
  }
  return targets;
}

std::vector<std::size_t> rank_counts(const query_stream& stream) {
  std::vector<std::size_t> counts(stream.pool.size(), 0);
  for (std::size_t rank : stream.order) {
    EXPECT_LT(rank, stream.pool.size());
    ++counts[rank];
  }
  return counts;
}

TEST(Zipf, StreamIsDeterministicForEqualParams) {
  alphabet names1;
  alphabet names2;
  const auto targets1 = zipf_targets(names1, 8);
  const auto targets2 = zipf_targets(names2, 8);
  query_stream_params params;
  params.pool_size = 12;
  params.length = 64;
  params.skew = 1.2;
  params.seed = 99;
  const query_stream a = make_query_stream(targets1, names1, params);
  const query_stream b = make_query_stream(targets2, names2, params);
  EXPECT_EQ(a.pool, b.pool);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.pool.size(), 12u);
  EXPECT_EQ(a.order.size(), 64u);
}

TEST(Zipf, SkewConcentratesTrafficOnTheHotHead) {
  alphabet names;
  const auto targets = zipf_targets(names, 8);
  query_stream_params params;
  params.pool_size = 16;
  params.length = 4096;
  params.seed = 5;

  params.skew = 1.2;
  const auto hot = rank_counts(make_query_stream(targets, names, params));
  // Rank 0 dominates: under s = 1.2 its share is ~29%; uniform would be
  // ~6%. Leave slack for sampling noise.
  EXPECT_GT(hot[0], params.length / 5);
  EXPECT_GT(hot[0], hot[8]);

  params.skew = 0.0;
  const auto flat = rank_counts(make_query_stream(targets, names, params));
  // s = 0 is uniform: every rank lands near length / pool_size = 256.
  for (std::size_t r = 0; r < flat.size(); ++r) {
    EXPECT_GT(flat[r], 256u / 2) << "rank " << r;
    EXPECT_LT(flat[r], 256u * 2) << "rank " << r;
  }
}

TEST(Zipf, GrowingTheStreamNeverReshufflesThePool) {
  // Pool slots and the request order draw from fixed seed streams, so a
  // longer stream with the same params extends the order without touching
  // the pool (and the shorter order is a prefix of the longer one).
  alphabet names1;
  alphabet names2;
  const auto targets1 = zipf_targets(names1, 8);
  const auto targets2 = zipf_targets(names2, 8);
  query_stream_params params;
  params.pool_size = 10;
  params.length = 32;
  params.skew = 0.8;
  params.seed = 17;
  const query_stream short_stream =
      make_query_stream(targets1, names1, params);
  params.length = 128;
  const query_stream long_stream =
      make_query_stream(targets2, names2, params);
  EXPECT_EQ(short_stream.pool, long_stream.pool);
  ASSERT_GE(long_stream.order.size(), short_stream.order.size());
  EXPECT_TRUE(std::equal(short_stream.order.begin(),
                         short_stream.order.end(),
                         long_stream.order.begin()));
}

TEST(Zipf, RejectsDegenerateParams) {
  alphabet names;
  const auto targets = zipf_targets(names, 4);
  query_stream_params params;
  params.pool_size = 0;
  EXPECT_THROW((void)make_query_stream(targets, names, params),
               std::invalid_argument);
  params.pool_size = 4;
  EXPECT_THROW((void)make_query_stream({}, names, params),
               std::invalid_argument);
  EXPECT_THROW(zipf_sampler(0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(zipf_sampler(4, -0.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bes
