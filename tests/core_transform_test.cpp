#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "core/transform.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

symbolic_image sample_scene(std::uint64_t seed, alphabet& names) {
  rng r(seed);
  scene_params params;
  params.width = 64;
  params.height = 48;  // non-square so axis swaps are exercised for real
  params.max_extent = 24;
  params.object_count = static_cast<std::size_t>(r.uniform_int(1, 14));
  params.symbol_pool = 5;
  params.grid = r.chance(0.4) ? 8 : 0;
  return random_scene(params, r, names);
}

// THE core correctness property of the paper's transformation claim:
// transforming the STRING equals re-encoding the transformed GEOMETRY.
class TransformCommutes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformCommutes, StringTransformEqualsGeometricReencode) {
  alphabet names;
  const symbolic_image scene = sample_scene(GetParam(), names);
  const be_string2d encoded = encode(scene);
  for (dihedral t : all_dihedral) {
    const be_string2d via_string = apply(t, encoded);
    const be_string2d via_geometry = encode(apply(t, scene));
    EXPECT_EQ(via_string, via_geometry) << to_string(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformCommutes,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Transform, ReverseSwapIsInvolution) {
  alphabet names;
  const symbolic_image scene = sample_scene(7, names);
  const be_string2d s = encode(scene);
  EXPECT_EQ(reverse_swap(reverse_swap(s.x)), s.x);
  EXPECT_EQ(reverse_swap(reverse_swap(s.y)), s.y);
}

TEST(Transform, IdentityIsNoop) {
  alphabet names;
  const be_string2d s = encode(sample_scene(8, names));
  EXPECT_EQ(apply(dihedral::identity, s), s);
}

TEST(Transform, ComposeOnStrings) {
  alphabet names;
  const be_string2d s = encode(sample_scene(9, names));
  for (dihedral a : all_dihedral) {
    for (dihedral b : all_dihedral) {
      EXPECT_EQ(apply(b, apply(a, s)), apply(compose(a, b), s))
          << to_string(a) << " then " << to_string(b);
    }
  }
}

TEST(Transform, InverseUndoes) {
  alphabet names;
  const be_string2d s = encode(sample_scene(10, names));
  for (dihedral t : all_dihedral) {
    EXPECT_EQ(apply(inverse(t), apply(t, s)), s) << to_string(t);
  }
}

TEST(Transform, Rot180ReversesBothAxes) {
  alphabet names;
  symbolic_image img(10, 10);
  const symbol_id a = names.intern("A");
  img.add(a, rect::checked(1, 3, 1, 3));
  const be_string2d s = encode(img);
  const be_string2d r = apply(dihedral::rot180, s);
  EXPECT_EQ(r.x, reverse_swap(s.x));
  EXPECT_EQ(r.y, reverse_swap(s.y));
}

TEST(Transform, ReverseSwapSwapsRoles) {
  alphabet names;
  const symbol_id a = names.intern("A");
  // A:b E A:e (full-domain object) -> reversed: A:b E A:e again (symmetric),
  // so use an asymmetric string: E A:b E A:e (object flush right).
  symbolic_image img(10, 10);
  img.add(a, rect::checked(4, 10, 0, 10));
  const be_string2d s = encode(img);
  const axis_string rx = reverse_swap(s.x);
  // Original x: E A:b E A:e; mirrored: A:b E A:e E.
  ASSERT_EQ(rx.size(), 4u);
  EXPECT_EQ(rx.at(0), token::boundary(a, boundary_kind::begin));
  EXPECT_TRUE(rx.at(1).is_dummy());
  EXPECT_EQ(rx.at(2), token::boundary(a, boundary_kind::end));
  EXPECT_TRUE(rx.at(3).is_dummy());
}

TEST(Transform, TransformedStringsStayWellFormed) {
  alphabet names;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const be_string2d s = encode(sample_scene(seed, names));
    for (dihedral t : all_dihedral) {
      EXPECT_TRUE(apply(t, s).well_formed()) << to_string(t);
    }
  }
}

}  // namespace
}  // namespace bes
