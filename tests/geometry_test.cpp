#include <gtest/gtest.h>

#include <vector>

#include "geometry/allen.hpp"
#include "geometry/dihedral.hpp"
#include "geometry/interval.hpp"
#include "geometry/rect.hpp"

namespace bes {
namespace {

// ---------------------------------------------------------------- interval

TEST(Interval, CheckedAcceptsProper) {
  const interval v = interval::checked(1, 4);
  EXPECT_EQ(v.lo, 1);
  EXPECT_EQ(v.hi, 4);
  EXPECT_EQ(v.length(), 3);
}

TEST(Interval, CheckedRejectsEmptyAndInverted) {
  EXPECT_THROW((void)interval::checked(3, 3), std::invalid_argument);
  EXPECT_THROW((void)interval::checked(4, 1), std::invalid_argument);
}

TEST(Interval, ContainsIsHalfOpen) {
  const interval v{2, 5};
  EXPECT_FALSE(v.contains(1));
  EXPECT_TRUE(v.contains(2));
  EXPECT_TRUE(v.contains(4));
  EXPECT_FALSE(v.contains(5));
}

TEST(Interval, OverlapsRequiresSharedInterior) {
  EXPECT_TRUE(overlaps(interval{0, 3}, interval{2, 5}));
  EXPECT_FALSE(overlaps(interval{0, 3}, interval{3, 5}));  // meets only
  EXPECT_FALSE(overlaps(interval{0, 3}, interval{4, 5}));
}

TEST(Interval, ContainsInterval) {
  EXPECT_TRUE(contains(interval{0, 10}, interval{0, 10}));
  EXPECT_TRUE(contains(interval{0, 10}, interval{3, 4}));
  EXPECT_FALSE(contains(interval{3, 4}, interval{0, 10}));
}

TEST(Interval, IntersectAndHull) {
  EXPECT_EQ(intersect(interval{0, 5}, interval{3, 9}), (interval{3, 5}));
  EXPECT_THROW((void)intersect(interval{0, 2}, interval{5, 6}),
               std::invalid_argument);
  EXPECT_EQ(hull(interval{0, 2}, interval{5, 6}), (interval{0, 6}));
}

TEST(Interval, ToStringFormat) {
  EXPECT_EQ(to_string(interval{1, 3}), "[1, 3)");
}

// ---------------------------------------------------------------- allen

// Direct predicate re-statement of each relation, independent of classify().
bool holds(allen_relation r, interval a, interval b) {
  switch (r) {
    case allen_relation::before: return a.hi < b.lo;
    case allen_relation::meets: return a.hi == b.lo;
    case allen_relation::overlaps:
      return a.lo < b.lo && b.lo < a.hi && a.hi < b.hi;
    case allen_relation::starts: return a.lo == b.lo && a.hi < b.hi;
    case allen_relation::during: return b.lo < a.lo && a.hi < b.hi;
    case allen_relation::finishes: return b.lo < a.lo && a.hi == b.hi;
    case allen_relation::equals: return a.lo == b.lo && a.hi == b.hi;
    case allen_relation::finished_by: return a.lo < b.lo && b.hi == a.hi;
    case allen_relation::contains: return a.lo < b.lo && b.hi < a.hi;
    case allen_relation::started_by: return a.lo == b.lo && b.hi < a.hi;
    case allen_relation::overlapped_by:
      return b.lo < a.lo && a.lo < b.hi && b.hi < a.hi;
    case allen_relation::met_by: return b.hi == a.lo;
    case allen_relation::after: return b.hi < a.lo;
  }
  return false;
}

std::vector<interval> small_intervals(int limit) {
  std::vector<interval> out;
  for (int lo = 0; lo < limit; ++lo) {
    for (int hi = lo + 1; hi <= limit; ++hi) out.push_back(interval{lo, hi});
  }
  return out;
}

TEST(Allen, ExhaustiveClassificationMatchesPredicates) {
  const auto intervals = small_intervals(6);
  for (interval a : intervals) {
    for (interval b : intervals) {
      const allen_relation r = classify(a, b);
      EXPECT_TRUE(holds(r, a, b))
          << to_string(a) << " vs " << to_string(b) << " -> " << to_string(r);
      // Exactly one relation may hold.
      int holding = 0;
      for (int k = 0; k < allen_relation_count; ++k) {
        holding += holds(static_cast<allen_relation>(k), a, b) ? 1 : 0;
      }
      EXPECT_EQ(holding, 1);
    }
  }
}

TEST(Allen, InversePairsExhaustive) {
  const auto intervals = small_intervals(6);
  for (interval a : intervals) {
    for (interval b : intervals) {
      EXPECT_EQ(inverse(classify(a, b)), classify(b, a));
    }
  }
}

TEST(Allen, InverseIsInvolution) {
  for (int k = 0; k < allen_relation_count; ++k) {
    const auto r = static_cast<allen_relation>(k);
    EXPECT_EQ(inverse(inverse(r)), r);
  }
}

TEST(Allen, EqualsIsSelfInverse) {
  EXPECT_EQ(inverse(allen_relation::equals), allen_relation::equals);
}

TEST(Allen, NamesAreDistinct) {
  std::vector<std::string_view> seen;
  for (int k = 0; k < allen_relation_count; ++k) {
    const auto name = to_string(static_cast<allen_relation>(k));
    EXPECT_EQ(std::count(seen.begin(), seen.end(), name), 0);
    seen.push_back(name);
  }
}

// ---------------------------------------------------------------- rect

TEST(Rect, CheckedValidates) {
  EXPECT_NO_THROW((void)rect::checked(0, 2, 0, 3));
  EXPECT_THROW((void)rect::checked(2, 2, 0, 3), std::invalid_argument);
  EXPECT_THROW((void)rect::checked(0, 2, 3, 3), std::invalid_argument);
}

TEST(Rect, AreaAndOverlap) {
  const rect a = rect::checked(0, 4, 0, 3);
  EXPECT_EQ(a.area(), 12);
  EXPECT_TRUE(overlaps(a, rect::checked(3, 5, 2, 6)));
  EXPECT_FALSE(overlaps(a, rect::checked(4, 5, 0, 3)));  // edge contact only
  EXPECT_TRUE(contains(a, rect::checked(1, 2, 1, 2)));
}

// ---------------------------------------------------------------- dihedral

TEST(Dihedral, IdentityFixesEverything) {
  const rect r = rect::checked(1, 4, 2, 7);
  EXPECT_EQ(apply(dihedral::identity, r, 10, 8), r);
}

TEST(Dihedral, KnownRotation90) {
  // Domain 10x8; rot90 (cw): (x,y) -> (y, 10-x); rect [1,4)x[2,7) ->
  // x' = [2,7), y' = [10-4, 10-1) = [6,9); new domain 8x10.
  const rect r = rect::checked(1, 4, 2, 7);
  EXPECT_EQ(apply(dihedral::rot90, r, 10, 8), rect::checked(2, 7, 6, 9));
}

TEST(Dihedral, KnownFlipY) {
  const rect r = rect::checked(1, 4, 2, 7);
  EXPECT_EQ(apply(dihedral::flip_y, r, 10, 8), rect::checked(6, 9, 2, 7));
}

TEST(Dihedral, ResultStaysInTransformedDomain) {
  const rect r = rect::checked(1, 4, 2, 7);
  for (dihedral t : all_dihedral) {
    const rect out = apply(t, r, 10, 8);
    const int w = swaps_axes(t) ? 8 : 10;
    const int h = swaps_axes(t) ? 10 : 8;
    EXPECT_TRUE(out.valid());
    EXPECT_GE(out.x.lo, 0);
    EXPECT_LE(out.x.hi, w);
    EXPECT_GE(out.y.lo, 0);
    EXPECT_LE(out.y.hi, h);
  }
}

TEST(Dihedral, InverseUndoesTransform) {
  const int w = 12;
  const int h = 9;
  const std::vector<rect> samples = {
      rect::checked(0, 12, 0, 9), rect::checked(0, 1, 0, 1),
      rect::checked(11, 12, 8, 9), rect::checked(3, 7, 2, 5)};
  for (dihedral t : all_dihedral) {
    const int tw = swaps_axes(t) ? h : w;
    const int th = swaps_axes(t) ? w : h;
    for (const rect& r : samples) {
      EXPECT_EQ(apply(inverse(t), apply(t, r, w, h), tw, th), r)
          << to_string(t);
    }
  }
}

TEST(Dihedral, ComposeMatchesSequentialApplication) {
  const int w = 12;
  const int h = 9;
  const rect r = rect::checked(3, 7, 2, 5);
  for (dihedral first : all_dihedral) {
    const int mw = swaps_axes(first) ? h : w;
    const int mh = swaps_axes(first) ? w : h;
    for (dihedral second : all_dihedral) {
      const rect sequential = apply(second, apply(first, r, w, h), mw, mh);
      const rect composed = apply(compose(first, second), r, w, h);
      EXPECT_EQ(sequential, composed)
          << to_string(first) << " then " << to_string(second);
    }
  }
}

TEST(Dihedral, ComposeWithInverseIsIdentity) {
  for (dihedral t : all_dihedral) {
    EXPECT_EQ(compose(t, inverse(t)), dihedral::identity) << to_string(t);
    EXPECT_EQ(compose(inverse(t), t), dihedral::identity) << to_string(t);
  }
}

TEST(Dihedral, GroupIsClosedAndHasIdentity) {
  for (dihedral a : all_dihedral) {
    EXPECT_EQ(compose(a, dihedral::identity), a);
    EXPECT_EQ(compose(dihedral::identity, a), a);
  }
}

TEST(Dihedral, RotationsCycle) {
  EXPECT_EQ(compose(dihedral::rot90, dihedral::rot90), dihedral::rot180);
  EXPECT_EQ(compose(dihedral::rot180, dihedral::rot90), dihedral::rot270);
  EXPECT_EQ(compose(dihedral::rot270, dihedral::rot90), dihedral::identity);
}

TEST(Dihedral, FlipsCompose) {
  EXPECT_EQ(compose(dihedral::flip_x, dihedral::flip_y), dihedral::rot180);
  EXPECT_EQ(compose(dihedral::transpose, dihedral::anti_transpose),
            dihedral::rot180);
}

}  // namespace
}  // namespace bes
