// Dihedral-transform consistency over all 8 group elements.
//
// core_transform_test.cpp pins encode(apply(t, scene)) == apply(t, encode(scene))
// on the symbolic path. These suites extend that to the full imaging pipeline
// (render -> extract -> encode) and to the group structure itself: transforming
// the raster-derived encoding must equal re-running the pipeline on the
// transformed scene, and composition/inverse must agree between the string and
// geometric realizations for every pair of elements.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/encoder.hpp"
#include "core/transform.hpp"
#include "geometry/dihedral.hpp"
#include "imaging/extract.hpp"
#include "imaging/render.hpp"
#include "support/test_support.hpp"

namespace bes {
namespace {

using testsupport::be_string_invariants;
using testsupport::make_scene;
using testsupport::scene_opts;

// Disjoint rectangle icons render and extract losslessly, so the imaging leg
// introduces no MBR error and equality is exact.
symbolic_image disjoint_scene(std::uint64_t seed, alphabet& names) {
  scene_opts opts;
  opts.object_count = 6;
  opts.disjoint = true;
  return make_scene(seed, names, opts);
}

class DihedralImaging : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DihedralImaging, ExtractionRecoversTheScene) {
  alphabet names;
  const symbolic_image scene = disjoint_scene(GetParam(), names);
  const symbolic_image recovered = extract_icons(render_scene(scene));
  EXPECT_EQ(encode(recovered), encode(scene));
}

TEST_P(DihedralImaging, StringTransformEqualsTransformedPipeline) {
  alphabet names;
  const symbolic_image scene = disjoint_scene(GetParam(), names);
  const be_string2d encoded = encode(extract_icons(render_scene(scene)));
  for (dihedral t : all_dihedral) {
    const be_string2d via_string = apply(t, encoded);
    const be_string2d via_pipeline =
        encode(extract_icons(render_scene(apply(t, scene))));
    EXPECT_EQ(via_string, via_pipeline) << to_string(t);
    EXPECT_TRUE(be_string_invariants(via_string, scene.size()))
        << to_string(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DihedralImaging,
                         ::testing::Range<std::uint64_t>(0, 8));

class DihedralGroup : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DihedralGroup, ComposeAgreesBetweenStringsAndGeometry) {
  alphabet names;
  const symbolic_image scene = make_scene(GetParam(), names);
  const be_string2d s = encode(scene);
  for (dihedral first : all_dihedral) {
    for (dihedral second : all_dihedral) {
      const dihedral composed = compose(first, second);
      EXPECT_EQ(apply(second, apply(first, s)), apply(composed, s))
          << to_string(first) << " then " << to_string(second);
      EXPECT_EQ(encode(apply(composed, scene)), apply(composed, s))
          << to_string(composed);
    }
  }
}

TEST_P(DihedralGroup, InverseRestoresStringAndScene) {
  alphabet names;
  const symbolic_image scene = make_scene(GetParam(), names);
  const be_string2d s = encode(scene);
  for (dihedral t : all_dihedral) {
    EXPECT_EQ(apply(inverse(t), apply(t, s)), s) << to_string(t);
    EXPECT_EQ(apply(inverse(t), apply(t, scene)), scene) << to_string(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DihedralGroup,
                         ::testing::Range<std::uint64_t>(0, 4));

}  // namespace
}  // namespace bes
