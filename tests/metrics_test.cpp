#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/retrieval.hpp"
#include "metrics/stats.hpp"

namespace bes {
namespace {

using ids = std::vector<std::uint32_t>;

// ---------------------------------------------------------------- retrieval

TEST(Retrieval, PrecisionAtK) {
  const ids ranked = {5, 1, 9, 2};
  const ids relevant = {1, 2};  // sorted
  EXPECT_DOUBLE_EQ(precision_at_k(ranked, relevant, 1), 0.0);
  EXPECT_DOUBLE_EQ(precision_at_k(ranked, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(precision_at_k(ranked, relevant, 4), 0.5);
  EXPECT_DOUBLE_EQ(precision_at_k(ranked, relevant, 0), 0.0);
}

TEST(Retrieval, PrecisionCountsMissingTailAsMisses) {
  const ids ranked = {1};
  const ids relevant = {1};
  // k larger than the result list: the divisor stays k.
  EXPECT_DOUBLE_EQ(precision_at_k(ranked, relevant, 4), 0.25);
}

TEST(Retrieval, RecallAtK) {
  const ids ranked = {5, 1, 9, 2};
  const ids relevant = {1, 2, 7};
  EXPECT_DOUBLE_EQ(recall_at_k(ranked, relevant, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(recall_at_k(ranked, relevant, 4), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(recall_at_k(ranked, ids{}, 4), 0.0);
}

TEST(Retrieval, AveragePrecisionTextbook) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  const ids ranked = {1, 8, 2, 9};
  const ids relevant = {1, 2};
  EXPECT_NEAR(average_precision(ranked, relevant), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
}

TEST(Retrieval, AveragePrecisionPenalizesUnretrieved) {
  const ids ranked = {1};
  const ids relevant = {1, 2};  // 2 never retrieved
  EXPECT_DOUBLE_EQ(average_precision(ranked, relevant), 0.5);
}

TEST(Retrieval, NdcgPerfectRankingIsOne) {
  const ids ranked = {1, 2, 3};
  const ids relevant = {1, 2, 3};
  EXPECT_DOUBLE_EQ(ndcg_at_k(ranked, relevant, 3), 1.0);
}

TEST(Retrieval, NdcgLateHitScoresLess) {
  const ids early = {1, 8, 9};
  const ids late = {8, 9, 1};
  const ids relevant = {1};
  EXPECT_GT(ndcg_at_k(early, relevant, 3), ndcg_at_k(late, relevant, 3));
  EXPECT_NEAR(ndcg_at_k(late, relevant, 3), 1.0 / std::log2(4.0), 1e-12);
}

TEST(Retrieval, ReciprocalRank) {
  const ids ranked = {8, 9, 1};
  const ids relevant = {1};
  EXPECT_DOUBLE_EQ(reciprocal_rank(ranked, relevant), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(reciprocal_rank(ranked, ids{2}), 0.0);
}

// ------------------------------------------------------- degenerate inputs
// The eval harness feeds whatever the ranker returns into these; a query
// with no relevant document or an all-zero judgment list must yield 0, not
// NaN or a division by zero.

TEST(Retrieval, NoRelevantDocumentIsZeroEverywhere) {
  const ids ranked = {3, 1, 4};
  const ids none = {};
  EXPECT_DOUBLE_EQ(reciprocal_rank(ranked, none), 0.0);
  EXPECT_DOUBLE_EQ(ndcg_at_k(ranked, none, 10), 0.0);
  EXPECT_DOUBLE_EQ(average_precision(ranked, none), 0.0);
  EXPECT_DOUBLE_EQ(recall_at_k(ranked, none, 10), 0.0);
}

TEST(Retrieval, EmptyRankingIsZeroNotNan) {
  const ids empty = {};
  const ids relevant = {1, 2};
  for (double v : {precision_at_k(empty, relevant, 5),
                   recall_at_k(empty, relevant, 5),
                   average_precision(empty, relevant),
                   ndcg_at_k(empty, relevant, 5),
                   reciprocal_rank(empty, relevant)}) {
    EXPECT_FALSE(std::isnan(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

// ---------------------------------------------------------------- graded

using graded = std::vector<graded_doc>;

TEST(Retrieval, GradeOfLooksUpSortedJudgments) {
  const graded judged = {{2, 1}, {5, 3}, {9, 2}};
  EXPECT_EQ(grade_of(5, judged), 3);
  EXPECT_EQ(grade_of(2, judged), 1);
  EXPECT_EQ(grade_of(7, judged), 0);
  EXPECT_EQ(relevant_ids(judged), (ids{2, 5, 9}));
}

TEST(Retrieval, NegativeGradesClampToZero) {
  const graded judged = {{1, -2}, {2, 1}};
  EXPECT_EQ(grade_of(1, judged), 0);
  EXPECT_EQ(relevant_ids(judged), (ids{2}));
}

TEST(Retrieval, GradedNdcgPerfectRankingIsOne) {
  const graded judged = {{1, 3}, {2, 2}, {3, 1}};
  const ids best = {1, 2, 3};
  EXPECT_DOUBLE_EQ(ndcg_at_k(best, judged, 3), 1.0);
  // Swapping the top two drops below 1: graded nDCG is order-sensitive
  // where binary nDCG would not be.
  const ids swapped = {2, 1, 3};
  EXPECT_LT(ndcg_at_k(swapped, judged, 3), 1.0);
  EXPECT_GT(ndcg_at_k(swapped, judged, 3), 0.0);
}

TEST(Retrieval, GradedNdcgTextbookValue) {
  // gains 2^g - 1: rank 1 grade 1 (gain 1), rank 2 grade 3 (gain 7).
  // DCG = 1/log2(2) + 7/log2(3); ideal = 7/log2(2) + 1/log2(3).
  const graded judged = {{1, 3}, {2, 1}};
  const ids ranked = {2, 1};
  const double dcg = 1.0 + 7.0 / std::log2(3.0);
  const double ideal = 7.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(ndcg_at_k(ranked, judged, 2), dcg / ideal, 1e-12);
}

TEST(Retrieval, AllZeroGradeRankingReturnsZeroNotNan) {
  // A judgment list with only zero (or negative) grades has ideal DCG 0;
  // the old binary code path could never see this, the graded one must not
  // divide by it.
  const graded all_zero = {{1, 0}, {2, 0}, {3, -1}};
  const ids ranked = {1, 2, 3};
  const double v = ndcg_at_k(ranked, all_zero, 10);
  EXPECT_FALSE(std::isnan(v));
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(reciprocal_rank(ranked, all_zero), 0.0);
  EXPECT_TRUE(relevant_ids(all_zero).empty());
}

TEST(Retrieval, GradedMrrFindsFirstPositiveGrade) {
  const graded judged = {{4, 2}, {9, 1}};
  const ids ranked = {7, 9, 4};
  EXPECT_DOUBLE_EQ(reciprocal_rank(ranked, judged), 0.5);
  EXPECT_DOUBLE_EQ(reciprocal_rank(ids{}, judged), 0.0);
}

TEST(Retrieval, GradedNdcgCutoffZeroIsZero) {
  const graded judged = {{1, 2}};
  EXPECT_DOUBLE_EQ(ndcg_at_k(ids{1}, judged, 0), 0.0);
}

// ---------------------------------------------------------------- stats

TEST(Stats, BasicAggregates) {
  sample_stats s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
}

TEST(Stats, Percentiles) {
  sample_stats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Stats, EmptyThrows) {
  sample_stats s;
  EXPECT_THROW((void)s.mean(), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(50), std::invalid_argument);
  EXPECT_EQ(s.summary(), "n=0");
}

TEST(Stats, BadPercentileThrows) {
  sample_stats s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(Stats, SummaryMentionsKeyFigures) {
  sample_stats s;
  s.add(1.0);
  s.add(2.0);
  const std::string summary = s.summary(1);
  EXPECT_NE(summary.find("n=2"), std::string::npos);
  EXPECT_NE(summary.find("mean=1.5"), std::string::npos);
}

}  // namespace
}  // namespace bes
