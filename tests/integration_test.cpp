// End-to-end pipeline tests: raster scenes -> icon extraction -> BE-string
// encoding -> database -> similarity retrieval, plus cross-checks between
// the BE-string ranking and the type-i baselines.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/type_similarity.hpp"
#include "db/query.hpp"
#include "db/storage.hpp"
#include "imaging/extract.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

TEST(Integration, RasterPipelineRetrievesRenderedScene) {
  rng r(1);
  image_database db;
  scene_params params;
  params.width = 128;
  params.height = 96;
  params.object_count = 7;
  params.max_extent = 24;
  params.disjoint = true;

  // Build the corpus THROUGH the raster pipeline: render to pixels, then
  // extract icons back before inserting, exactly as a deployment that only
  // has bitmaps would.
  std::vector<symbolic_image> originals;
  for (int i = 0; i < 12; ++i) {
    const symbolic_image scene = random_scene(params, r, db.symbols());
    originals.push_back(scene);
    const symbolic_image extracted = extract_icons(render_scene(scene));
    db.add("scene" + std::to_string(i), extracted);
  }

  // Query with the original (pre-raster) scene: extraction was lossless for
  // disjoint scenes, so the match must be perfect.
  for (image_id target : {image_id{0}, image_id{5}, image_id{11}}) {
    const auto results = search(db, originals[target]);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results[0].id, target);
    EXPECT_DOUBLE_EQ(results[0].score, 1.0);
  }
}

TEST(Integration, PartialQueryStillRanksTargetFirst) {
  rng r(2);
  image_database db;
  scene_params params;
  params.object_count = 10;
  params.symbol_pool = 12;
  std::vector<symbolic_image> scenes;
  for (int i = 0; i < 20; ++i) {
    scenes.push_back(random_scene(params, r, db.symbols()));
    db.add("s" + std::to_string(i), scenes.back());
  }
  // Keep 60% of the target's icons — the paper's partial-query scenario.
  distortion_params d;
  d.keep_fraction = 0.6;
  int first_place = 0;
  constexpr int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const image_id target = static_cast<image_id>(t);
    const symbolic_image query = distort(scenes[target], d, r, db.symbols());
    const auto results = search(db, query);
    ASSERT_FALSE(results.empty());
    if (results[0].id == target) ++first_place;
  }
  // Partial queries must overwhelmingly find their source image.
  EXPECT_GE(first_place, 8) << "partial queries lost their target";
}

TEST(Integration, TransformInvariantSearchOverRasterPipeline) {
  rng r(3);
  image_database db;
  scene_params params;
  params.width = 96;
  params.height = 64;
  params.object_count = 6;
  params.max_extent = 20;
  params.disjoint = true;
  const symbolic_image scene = random_scene(params, r, db.symbols());
  // Store only the rotated rendering.
  const symbolic_image rotated = apply(dihedral::rot270, scene);
  db.add("rotated", extract_icons(render_scene(rotated)));
  db.add("noise", random_scene(params, r, db.symbols()));

  query_options options;
  options.transform_invariant = true;
  const auto results = search(db, scene, options);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].id, 0u);
  EXPECT_DOUBLE_EQ(results[0].score, 1.0);
}

TEST(Integration, BeLcsAgreesWithType2OnExactMatches) {
  // When a query image is an exact sub-picture, both the BE-LCS score and
  // the type-2 clique agree it is a full match.
  rng r(4);
  alphabet names;
  scene_params params;
  params.object_count = 8;
  params.symbol_pool = 8;
  params.unique_symbols = true;
  const symbolic_image scene = random_scene(params, r, names);
  symbolic_image query(scene.width(), scene.height());
  for (std::size_t i = 0; i < 4; ++i) query.add(scene.icons()[i]);

  EXPECT_DOUBLE_EQ(similarity(encode(query), encode(scene)), 1.0);
  const auto type2 =
      type_similarity(query, scene, {similarity_type::type2, 0});
  EXPECT_EQ(type2.matched_objects, query.size());
}

TEST(Integration, JitterHurtsType2BeforeBeLcs) {
  // The paper's motivation for LCS scoring: small geometric perturbations
  // break exact relation equality (type-2 similarity collapses) while the
  // LCS score degrades smoothly. Aggregate over several seeds.
  double lcs_total = 0.0;
  double type2_total = 0.0;
  constexpr int trials = 8;
  for (int t = 0; t < trials; ++t) {
    rng r(100 + static_cast<std::uint64_t>(t));
    alphabet names;
    scene_params params;
    params.object_count = 8;
    params.symbol_pool = 8;
    params.unique_symbols = true;
    const symbolic_image scene = random_scene(params, r, names);
    distortion_params d;
    d.jitter = 6;
    const symbolic_image query = distort(scene, d, r, names);

    lcs_total += similarity(encode(query), encode(scene));
    const auto type2 =
        type_similarity(query, scene, {similarity_type::type2, 0});
    type2_total += static_cast<double>(type2.matched_objects) /
                   static_cast<double>(query.size());
  }
  EXPECT_GT(lcs_total / trials, type2_total / trials);
}

TEST(Integration, SaveLoadSearchRoundTripThroughPipeline) {
  rng r(5);
  image_database db;
  scene_params params;
  params.object_count = 6;
  for (int i = 0; i < 8; ++i) {
    db.add("img" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  const auto path = std::filesystem::temp_directory_path() /
                    "bestring_integration.besdb";
  save_database(db, path);
  const image_database loaded = load_database(path);
  query_options options;
  options.transform_invariant = true;
  options.threads = 2;
  const symbolic_image& query = db.record(2).image;
  EXPECT_EQ(search(db, query, options), search(loaded, query, options));
  std::filesystem::remove(path);
}

TEST(Integration, EmptyDatabaseYieldsNoResults) {
  image_database db;
  symbolic_image query(10, 10);
  EXPECT_TRUE(search(db, query).empty());
}

}  // namespace
}  // namespace bes
