#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "core/serializer.hpp"

namespace bes {
namespace {

be_string2d sample_string(alphabet& names) {
  symbolic_image img(12, 11);
  img.add(names.intern("A"), rect::checked(2, 6, 3, 9));
  img.add(names.intern("B"), rect::checked(4, 10, 1, 5));
  img.add(names.intern("C"), rect::checked(6, 8, 5, 7));
  return encode(img);
}

TEST(Serializer, AxisRoundTrip) {
  alphabet names;
  const be_string2d s = sample_string(names);
  const std::string text = to_text(s.x, names);
  alphabet names2;
  names2.intern("A");
  names2.intern("B");
  names2.intern("C");
  EXPECT_EQ(parse_axis(text, names2), s.x);
}

TEST(Serializer, TwoDRoundTrip) {
  alphabet names;
  const be_string2d s = sample_string(names);
  const std::string text = to_text(s, names);
  alphabet names2;
  names2.intern("A");
  names2.intern("B");
  names2.intern("C");
  EXPECT_EQ(parse_be_string(text, names2), s);
}

TEST(Serializer, ParseInternsUnknownSymbols) {
  alphabet names;
  const axis_string s = parse_axis("E X:b E X:e E", names);
  EXPECT_TRUE(names.knows("X"));
  EXPECT_EQ(s.size(), 5u);
  EXPECT_TRUE(s.well_formed());
}

TEST(Serializer, MachineFormUsesColonRoles) {
  alphabet names;
  const symbol_id a = names.intern("door");
  axis_string s(std::vector<token>{token::dummy(),
                                   token::boundary(a, boundary_kind::begin),
                                   token::boundary(a, boundary_kind::end)});
  EXPECT_EQ(to_text(s, names), "E door:b door:e");
}

TEST(Serializer, PaperStyleCompact) {
  alphabet names;
  const symbol_id a = names.intern("A");
  axis_string s(std::vector<token>{token::dummy(),
                                   token::boundary(a, boundary_kind::begin),
                                   token::dummy(),
                                   token::boundary(a, boundary_kind::end)});
  EXPECT_EQ(paper_style(s, names), "EAbEAe");
}

TEST(Serializer, EmptyAxisParses) {
  alphabet names;
  EXPECT_EQ(parse_axis("", names).size(), 0u);
  EXPECT_EQ(parse_axis("   ", names).size(), 0u);
}

TEST(Serializer, MalformedTokensThrow) {
  alphabet names;
  EXPECT_THROW((void)parse_axis("A", names), std::invalid_argument);
  EXPECT_THROW((void)parse_axis("A:", names), std::invalid_argument);
  EXPECT_THROW((void)parse_axis("A:x", names), std::invalid_argument);
  EXPECT_THROW((void)parse_axis("A:bb", names), std::invalid_argument);
}

TEST(Serializer, MalformedTwoDThrows) {
  alphabet names;
  EXPECT_THROW((void)parse_be_string("A:b A:e", names), std::invalid_argument);
  EXPECT_THROW((void)parse_be_string("( A:b A:e )", names),
               std::invalid_argument);
}

TEST(Serializer, DummyRoundTrips) {
  alphabet names;
  const axis_string s = parse_axis("E", names);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.at(0).is_dummy());
  EXPECT_EQ(to_text(s, names), "E");
}

}  // namespace
}  // namespace bes
