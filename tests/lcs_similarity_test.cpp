#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "lcs/similarity.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

symbolic_image scene_from_seed(std::uint64_t seed, alphabet& names,
                               std::size_t count = 8) {
  rng r(seed);
  scene_params params;
  params.object_count = count;
  params.symbol_pool = 6;
  return random_scene(params, r, names);
}

TEST(Similarity, SelfSimilarityIsOneUnderEveryNorm) {
  alphabet names;
  const be_string2d s = encode(scene_from_seed(1, names));
  for (norm_kind norm : {norm_kind::query, norm_kind::max_len, norm_kind::dice,
                         norm_kind::min_len}) {
    similarity_options options;
    options.norm = norm;
    EXPECT_DOUBLE_EQ(similarity(s, s, options), 1.0)
        << static_cast<int>(norm);
  }
}

TEST(Similarity, OutOfEnumNormThrowsInsteadOfNormalizingByOne) {
  // Regression: the norm_kind switch used to fall through to a silent 1.0
  // denominator, so an out-of-enum value (e.g. smuggled through a raw
  // static_cast from parsed input) produced scores > 1 instead of an error.
  alphabet names;
  const be_string2d s = encode(scene_from_seed(1, names));
  similarity_options options;
  options.norm = static_cast<norm_kind>(200);
  EXPECT_THROW((void)similarity(s, s, options), std::invalid_argument);
}

TEST(Similarity, CheckedNormKindValidates) {
  EXPECT_EQ(checked_norm_kind(0), norm_kind::query);
  EXPECT_EQ(checked_norm_kind(3), norm_kind::min_len);
  EXPECT_THROW((void)checked_norm_kind(4), std::invalid_argument);
  EXPECT_THROW((void)checked_norm_kind(-1), std::invalid_argument);
  EXPECT_THROW((void)checked_norm_kind(200), std::invalid_argument);
}

TEST(Similarity, RangeStaysWithinZeroOne) {
  alphabet names;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const be_string2d a = encode(scene_from_seed(i, names));
    const be_string2d b = encode(scene_from_seed(i + 100, names));
    for (norm_kind norm :
         {norm_kind::query, norm_kind::max_len, norm_kind::dice}) {
      similarity_options options;
      options.norm = norm;
      const double s = similarity(a, b, options);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(Similarity, MinLenNormCanExceedOthers) {
  // min_len is a containment score; for a sub-picture it reaches 1.
  alphabet names;
  const symbolic_image scene = scene_from_seed(2, names);
  symbolic_image query(scene.width(), scene.height());
  query.add(scene.icons()[0]);
  query.add(scene.icons()[1]);
  similarity_options options;
  options.norm = norm_kind::min_len;
  EXPECT_DOUBLE_EQ(similarity(encode(query), encode(scene), options), 1.0);
}

TEST(Similarity, SubsetQueryScoresOneUnderQueryNorm) {
  alphabet names;
  const symbolic_image scene = scene_from_seed(3, names);
  symbolic_image query(scene.width(), scene.height());
  for (std::size_t i = 0; i < scene.size(); i += 2) {
    query.add(scene.icons()[i]);
  }
  EXPECT_DOUBLE_EQ(similarity(encode(query), encode(scene)), 1.0);
}

TEST(Similarity, DisjointSymbolsScoreNearFloor) {
  alphabet names;
  symbolic_image a(32, 32);
  symbolic_image b(32, 32);
  a.add(names.intern("A"), rect::checked(2, 10, 2, 10));
  b.add(names.intern("Z"), rect::checked(2, 10, 2, 10));
  const double s = similarity(encode(a), encode(b));
  // Only a single dummy can match per axis: 1/5 under the query norm.
  EXPECT_NEAR(s, 0.2, 1e-9);
}

TEST(Similarity, DegradesMonotonicallyWithIconRemoval) {
  // Removing query icons that exist in the db image cannot raise a
  // max_len-normalized score against the full scene.
  alphabet names;
  const symbolic_image scene = scene_from_seed(4, names, 10);
  const be_string2d ds = encode(scene);
  similarity_options options;
  options.norm = norm_kind::max_len;
  double previous = 1.0;
  symbolic_image shrinking = scene;
  while (shrinking.size() > 1) {
    shrinking.remove(shrinking.size() - 1);
    const double s = similarity(encode(shrinking), ds, options);
    EXPECT_LE(s, previous + 1e-12);
    previous = s;
  }
}

TEST(Similarity, ExactLcsOptionNeverLowersScore) {
  alphabet names;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const be_string2d a = encode(scene_from_seed(i, names));
    const be_string2d b = encode(scene_from_seed(i + 50, names));
    similarity_options paper;
    similarity_options exact;
    exact.exact_lcs = true;
    EXPECT_LE(similarity(a, b, paper), similarity(a, b, exact) + 1e-12);
  }
}

// ------------------------------------------------- transform retrieval

TEST(TransformSimilarity, RecoversAppliedTransform) {
  alphabet names;
  const symbolic_image scene = scene_from_seed(5, names);
  const be_string2d qs = encode(scene);
  for (dihedral t : all_dihedral) {
    const be_string2d ds = encode(apply(t, scene));
    const transform_match best = best_transform_similarity(qs, ds);
    EXPECT_DOUBLE_EQ(best.score, 1.0) << to_string(t);
    // The recovered transform must map q onto d exactly (it may differ from
    // t when the scene is symmetric).
    EXPECT_EQ(apply(best.transform, qs), ds) << to_string(t);
  }
}

TEST(TransformSimilarity, IdentityQueryOnUnrelatedImage) {
  alphabet names;
  const be_string2d a = encode(scene_from_seed(6, names));
  const be_string2d b = encode(scene_from_seed(7, names));
  const transform_match best = best_transform_similarity(a, b);
  EXPECT_GE(best.score, similarity(a, b));  // best-of-8 >= identity
}

TEST(TransformSimilarity, JitteredTransformedSceneStillRanksHigh) {
  alphabet names;
  rng r(8);
  const symbolic_image scene = scene_from_seed(8, names);
  distortion_params distortion;
  distortion.jitter = 2;
  distortion.transform = dihedral::rot90;
  const symbolic_image query = distort(scene, distortion, r, names);
  const transform_match best =
      best_transform_similarity(encode(query), encode(scene));
  EXPECT_GT(best.score, 0.5);
}

}  // namespace
}  // namespace bes
