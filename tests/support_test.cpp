// Tests of the test-support layer itself: golden fixtures encode to their
// pinned strings, the seeded scene builder is deterministic, and the
// invariant checkers both accept encoder output and reject malformed input.
#include <gtest/gtest.h>

#include <set>

#include "core/encoder.hpp"
#include "core/serializer.hpp"
#include "support/test_support.hpp"

namespace bes {
namespace {

using testsupport::axis_well_formed;
using testsupport::be_string_invariants;
using testsupport::golden_fixtures;
using testsupport::make_scene;
using testsupport::scene_opts;

TEST(GoldenFixtures, EncodeToPinnedPaperStrings) {
  for (const auto& fixture : golden_fixtures()) {
    alphabet names;
    const symbolic_image scene = fixture.build(names);
    const be_string2d s = encode(scene);
    EXPECT_EQ(paper_style(s.x, names), fixture.paper_x) << fixture.name;
    EXPECT_EQ(paper_style(s.y, names), fixture.paper_y) << fixture.name;
    EXPECT_TRUE(be_string_invariants(s, scene.size())) << fixture.name;
  }
}

TEST(SceneBuilder, DeterministicGivenSeed) {
  alphabet names_a;
  alphabet names_b;
  const symbolic_image a = make_scene(42, names_a);
  const symbolic_image b = make_scene(42, names_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(names_a, names_b);
}

TEST(SceneBuilder, DistinctSeedsDiffer) {
  alphabet names;
  EXPECT_NE(make_scene(1, names), make_scene(2, names));
}

TEST(SceneBuilder, HonorsObjectCountAndDomain) {
  alphabet names;
  scene_opts opts;
  opts.object_count = 17;
  opts.domain = 64;
  const symbolic_image scene = make_scene(7, names, opts);
  EXPECT_EQ(scene.size(), 17u);
  EXPECT_EQ(scene.width(), 64);
  EXPECT_EQ(scene.height(), 64);
}

TEST(SceneBuilder, DisjointModeYieldsDisjointScenes) {
  alphabet names;
  scene_opts opts;
  opts.object_count = 6;
  opts.disjoint = true;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_TRUE(make_scene(seed, names, opts).disjoint()) << "seed " << seed;
  }
}

TEST(SceneBuilder, UniqueSymbolsAreDistinct) {
  alphabet names;
  scene_opts opts;
  opts.object_count = 9;
  opts.unique_symbols = true;
  const symbolic_image scene = make_scene(3, names, opts);
  std::set<symbol_id> seen;
  for (const icon& obj : scene.icons()) seen.insert(obj.symbol);
  EXPECT_EQ(seen.size(), scene.size());
}

TEST(InvariantCheckers, AcceptEncoderOutput) {
  alphabet names;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const symbolic_image scene = make_scene(seed, names);
    const be_string2d s = encode(scene);
    EXPECT_TRUE(axis_well_formed(s.x)) << "seed " << seed;
    EXPECT_TRUE(axis_well_formed(s.y)) << "seed " << seed;
    EXPECT_TRUE(be_string_invariants(s, scene.size())) << "seed " << seed;
  }
}

TEST(InvariantCheckers, AcceptEmptyScene) {
  const be_string2d s = encode(symbolic_image(8, 8));
  EXPECT_TRUE(be_string_invariants(s, 0));
}

TEST(InvariantCheckers, RejectAdjacentDummies) {
  const axis_string s({token::dummy(), token::dummy()});
  const auto result = axis_well_formed(s);
  EXPECT_FALSE(result);
  EXPECT_NE(std::string(result.message()).find("adjacent dummies"),
            std::string::npos);
}

TEST(InvariantCheckers, RejectUnbalancedBoundaries) {
  const axis_string s({token::boundary(0, boundary_kind::begin)});
  const auto result = axis_well_formed(s);
  EXPECT_FALSE(result);
  EXPECT_NE(std::string(result.message()).find("begins"), std::string::npos);
}

TEST(InvariantCheckers, RejectEndBeforeBegin) {
  const axis_string s({token::boundary(0, boundary_kind::end),
                       token::boundary(0, boundary_kind::begin)});
  EXPECT_FALSE(axis_well_formed(s));
}

TEST(InvariantCheckers, RejectWrongObjectCount) {
  alphabet names;
  const be_string2d s = encode(testsupport::figure1_scene(names));
  EXPECT_TRUE(be_string_invariants(s, 3));
  EXPECT_FALSE(be_string_invariants(s, 4));
}

}  // namespace
}  // namespace bes
