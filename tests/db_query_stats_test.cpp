// search_stats semantics and pruned-scan equivalence.
//
// The contract under test: every scan path accounts each scanned candidate
// as exactly one of scored/pruned (scanned == scored + pruned), exhaustive
// scans never prune, and the pruned scan — histogram bound ordering, the
// running k-th-score threshold, and the in-DP early-exit band, serial or
// parallel — returns results identical to the exhaustive scan for the same
// inputs. Plus search_batch == per-query search, for every mode.
//
// ISSUE 7 extends the accounting upstream of the scan: every entry point
// also reports candidates_generated — the RAW ids its access path produced
// before dedup — so scanned == scored + pruned keeps partitioning what was
// visited while generated >= scanned exposes the generation overhead of
// prefiltered paths (duplicate posting/window hits that dedup removed).
// Legacy entry points leave stats.plans empty; only the planner records
// plans (db_planner_test covers those).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/prefilter.hpp"
#include "db/query.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"

namespace bes {
namespace {

// A corpus with near-duplicate pairs so top-k boundaries see score ties.
image_database sibling_corpus(std::size_t bases, std::uint64_t seed = 23) {
  image_database db;
  rng r(seed);
  scene_params params;
  params.object_count = 8;
  params.symbol_pool = 10;
  for (std::size_t i = 0; i < bases; ++i) {
    const symbolic_image scene = random_scene(params, r, db.symbols());
    db.add("base" + std::to_string(i), scene);
    distortion_params sibling;
    sibling.keep_fraction = 0.8;
    sibling.jitter = 16;
    db.add("sib" + std::to_string(i), distort(scene, sibling, r, db.symbols()));
  }
  return db;
}

symbolic_image distorted_query(const image_database& db, std::uint64_t seed,
                               double keep = 0.6) {
  rng r(seed);
  distortion_params d;
  d.keep_fraction = keep;
  d.jitter = 8;
  alphabet scratch = db.symbols();
  return distort(db.record(static_cast<image_id>(seed % db.size())).image, d,
                 r, scratch);
}

// ------------------------------------------------------- stats invariants

class StatsConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsConsistency, BothPathsPartitionScannedIdentically) {
  const image_database db = sibling_corpus(20);
  const symbolic_image query = distorted_query(db, GetParam());
  query_options exhaustive;
  exhaustive.top_k = 5;
  query_options pruned = exhaustive;
  pruned.histogram_pruning = true;

  search_stats es;
  search_stats ps;
  const auto a = search(db, query, exhaustive, &es);
  const auto b = search(db, query, pruned, &ps);
  EXPECT_EQ(a, b);

  // Same candidate set on both paths.
  EXPECT_EQ(es.scanned, ps.scanned);
  // Exhaustive: everything scored, nothing pruned, no band.
  EXPECT_EQ(es.scored, es.scanned);
  EXPECT_EQ(es.pruned, 0u);
  EXPECT_EQ(es.band_rejected, 0u);
  // Pruned: scored/pruned partition scanned; the band only rejects scored
  // candidates.
  EXPECT_EQ(ps.scored + ps.pruned, ps.scanned);
  EXPECT_LE(ps.band_rejected, ps.scored);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsConsistency,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(StatsConsistency, ParallelPrunedPartitionsScannedToo) {
  const image_database db = sibling_corpus(30);
  const symbolic_image query = distorted_query(db, 3);
  query_options pruned;
  pruned.top_k = 5;
  pruned.histogram_pruning = true;
  pruned.threads = 4;
  search_stats ps;
  (void)search(db, query, pruned, &ps);
  EXPECT_EQ(ps.scored + ps.pruned, ps.scanned);
}

// ------------------------------------- pruned == exhaustive, all variants

class PrunedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrunedEquivalence, EarlyExitTopKIsIdenticalToExhaustive) {
  const image_database db = sibling_corpus(25, 29 + GetParam());
  const symbolic_image query = distorted_query(db, GetParam());
  for (std::size_t k : {1u, 4u, 10u}) {
    for (double min_score : {0.0, 0.3, 0.6}) {
      for (unsigned threads : {1u, 4u}) {
        query_options plain;
        plain.top_k = k;
        plain.min_score = min_score;
        query_options pruned = plain;
        pruned.histogram_pruning = true;
        pruned.threads = threads;
        EXPECT_EQ(search(db, query, plain), search(db, query, pruned))
            << "k=" << k << " min_score=" << min_score
            << " threads=" << threads;
      }
    }
  }
}

TEST_P(PrunedEquivalence, HoldsUnderEveryNormAndBothKernels) {
  // The band's admissibility math (min_tokens_for, the y-axis cap) is
  // norm-dependent, and the exact kernel has its own banded path; sweep all
  // of it against the exhaustive scan.
  const image_database db = sibling_corpus(15, 61 + GetParam());
  const symbolic_image query = distorted_query(db, GetParam());
  for (norm_kind norm : {norm_kind::query, norm_kind::max_len, norm_kind::dice,
                         norm_kind::min_len}) {
    for (bool exact : {false, true}) {
      query_options plain;
      plain.top_k = 5;
      plain.min_score = 0.4;
      plain.similarity.norm = norm;
      plain.similarity.exact_lcs = exact;
      query_options pruned = plain;
      pruned.histogram_pruning = true;
      EXPECT_EQ(search(db, query, plain), search(db, query, pruned))
          << "norm=" << static_cast<int>(norm) << " exact=" << exact;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedEquivalence,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(PrunedEquivalence, MinScoreOnlyPruningWithUnlimitedTopK) {
  // top_k == 0 used to disable the pruner entirely; a min_score floor alone
  // is enough of a threshold.
  const image_database db = sibling_corpus(20);
  const symbolic_image query = distorted_query(db, 5, 0.9);
  query_options plain;
  plain.top_k = 0;
  plain.min_score = 0.8;
  query_options pruned = plain;
  pruned.histogram_pruning = true;
  search_stats stats;
  EXPECT_EQ(search(db, query, plain), search(db, query, pruned, &stats));
  EXPECT_EQ(stats.scored + stats.pruned, stats.scanned);
  EXPECT_GT(stats.pruned, 0u) << "min_score floor never engaged the pruner";
}

TEST(PrunedEquivalence, UnderfilledTopKStillPrunesViaMinScore) {
  // Regression: the old scan only pruned once top_k results were held, so a
  // min_score most candidates miss meant every one was fully scored even
  // though its bound already ruled it out.
  const image_database db = sibling_corpus(40);
  const symbolic_image query = distorted_query(db, 7, 0.7);
  query_options options;
  options.top_k = 25;  // far more than will clear the floor
  options.min_score = 0.75;
  options.histogram_pruning = true;
  search_stats stats;
  const auto results = search(db, query, options, &stats);
  EXPECT_LT(results.size(), options.top_k);  // the floor leaves top-k short
  EXPECT_GT(stats.pruned, 0u)
      << "bound below min_score must prune even while top-k is underfilled";
  EXPECT_EQ(stats.scored + stats.pruned, stats.scanned);
  query_options plain = options;
  plain.histogram_pruning = false;
  EXPECT_EQ(results, search(db, query, plain));
}

TEST(PrunedEquivalence, BandActuallyCutsDpsShort) {
  // On a sibling-heavy corpus with a selective query the in-DP band must
  // reject at least some scored candidates before they finish.
  const image_database db = sibling_corpus(40);
  const symbolic_image query = distorted_query(db, 1, 0.8);
  query_options options;
  options.top_k = 3;
  options.histogram_pruning = true;
  search_stats stats;
  (void)search(db, query, options, &stats);
  EXPECT_GT(stats.band_rejected, 0u) << "early-exit band never engaged";
}

// ------------------------------------- candidate-generation accounting

TEST(StatsGeneration, FullScanGeneratesExactlyTheCorpus) {
  const image_database db = sibling_corpus(12);
  const symbolic_image query = distorted_query(db, 2);
  query_options options;
  options.use_index = false;
  search_stats stats;
  (void)search(db, query, options, &stats);
  EXPECT_EQ(stats.candidates_generated, db.size());
  EXPECT_EQ(stats.scanned, db.size());
  EXPECT_TRUE(stats.plans.empty()) << "legacy entry points never plan";
}

TEST(StatsGeneration, IndexedScanCountsRawPostingHits) {
  const image_database db = sibling_corpus(20);
  const symbolic_image query = distorted_query(db, 4);
  query_options options;
  options.use_index = true;
  options.histogram_pruning = true;
  search_stats stats;
  (void)search(db, query, options, &stats);
  // Raw posting hits can only exceed or equal the deduped scan set, and
  // scored/pruned still partitions exactly what was visited.
  EXPECT_GE(stats.candidates_generated, stats.scanned);
  EXPECT_GT(stats.scanned, 0u);
  EXPECT_EQ(stats.scored + stats.pruned, stats.scanned);
  EXPECT_TRUE(stats.plans.empty());
}

TEST(StatsGeneration, ExplicitCandidateListGeneratesItsOwnSize) {
  // search_candidates scores exactly the given list — generation is the
  // caller's doing, so generated == scanned == the list's size.
  const image_database db = sibling_corpus(15);
  const spatial_index spatial(db);
  const symbolic_image query = distorted_query(db, 3, 0.8);
  const auto set = combined_candidates(db, spatial, query, 16);
  ASSERT_FALSE(set.empty());
  search_stats stats;
  (void)search_candidates(db, encode(query), set, {}, &stats);
  EXPECT_EQ(stats.candidates_generated, set.size());
  EXPECT_EQ(stats.scanned, set.size());
  EXPECT_EQ(stats.scored + stats.pruned, stats.scanned);
  EXPECT_TRUE(stats.plans.empty());
}

TEST(StatsGeneration, BatchStatsCarryGenerationPerQuery) {
  const image_database db = sibling_corpus(15);
  std::vector<symbolic_image> queries;
  for (std::uint64_t s = 0; s < 5; ++s) {
    queries.push_back(distorted_query(db, s));
  }
  query_options options;
  options.top_k = 5;
  options.threads = 3;
  std::vector<search_stats> stats;
  (void)search_batch(db, queries, options, &stats);
  ASSERT_EQ(stats.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    search_stats single;
    (void)search(db, queries[i], options, &single);
    EXPECT_EQ(stats[i].candidates_generated, single.candidates_generated)
        << "query " << i;
    EXPECT_GE(stats[i].candidates_generated, stats[i].scanned);
  }
}

// --------------------------------------------------------------- batching

TEST(SearchBatch, MatchesPerQuerySearch) {
  const image_database db = sibling_corpus(15);
  std::vector<symbolic_image> queries;
  for (std::uint64_t s = 0; s < 6; ++s) {
    queries.push_back(distorted_query(db, s));
  }
  for (bool pruning : {false, true}) {
    for (unsigned threads : {1u, 3u}) {
      query_options options;
      options.top_k = 5;
      options.histogram_pruning = pruning;
      options.threads = threads;
      std::vector<search_stats> batch_stats;
      const auto batched = search_batch(db, queries, options, &batch_stats);
      ASSERT_EQ(batched.size(), queries.size());
      ASSERT_EQ(batch_stats.size(), queries.size());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        search_stats single_stats;
        EXPECT_EQ(batched[i], search(db, queries[i], options, &single_stats))
            << "query " << i << " pruning=" << pruning
            << " threads=" << threads;
        EXPECT_EQ(batch_stats[i].scanned, single_stats.scanned);
        EXPECT_EQ(batch_stats[i].scored + batch_stats[i].pruned,
                  batch_stats[i].scanned);
      }
    }
  }
}

TEST(SearchBatch, TransformInvariantMatchesPerQuerySearch) {
  image_database db;
  rng r(14);
  scene_params params;
  params.object_count = 6;
  params.symbol_pool = 6;
  const symbolic_image original = random_scene(params, r, db.symbols());
  db.add("original", original);
  db.add("rotated", apply(dihedral::rot90, original));
  for (int i = 0; i < 10; ++i) {
    db.add("other" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  std::vector<symbolic_image> queries = {original,
                                         apply(dihedral::flip_x, original)};
  query_options options;
  options.transform_invariant = true;
  options.top_k = 0;
  const auto batched = search_batch(db, queries, options);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i], search(db, queries[i], options)) << "query " << i;
  }
  // The rotated copy is a perfect match for both query orientations.
  ASSERT_FALSE(batched[0].empty());
  EXPECT_DOUBLE_EQ(batched[0][0].score, 1.0);
}

TEST(SearchBatch, DynamicSchedulingIsThreadAndChunkInvariant) {
  // The cross-query work queue (ISSUE 5 satellite): however the batch is
  // carved up — more threads than queries, fewer threads than queries, or
  // serial — the results must be identical. A scheduling dependence would
  // show up as a flaky mismatch across these chunkings.
  const image_database db = sibling_corpus(20);
  std::vector<symbolic_image> queries;
  for (std::uint64_t s = 0; s < 5; ++s) {
    queries.push_back(distorted_query(db, s));
  }
  for (bool pruning : {false, true}) {
    query_options options;
    options.top_k = 5;
    options.histogram_pruning = pruning;
    options.threads = 1;
    const auto reference = search_batch(db, queries, options);
    for (unsigned threads : {2u, 3u, 8u, 16u}) {  // spans nq and beyond
      query_options chunked = options;
      chunked.threads = threads;
      EXPECT_EQ(search_batch(db, queries, chunked), reference)
          << "threads=" << threads << " pruning=" << pruning;
    }
  }
}

// ------------------------------------------- prefiltered candidate batches

TEST(SearchBatchCandidates, MatchesPerQuerySearchCandidates) {
  // The ROADMAP item: combined_candidates fed through the batch path. Per
  // query, the batch scan over an explicit candidate set must agree with
  // search_candidates — results AND stats.
  const image_database db = sibling_corpus(20);
  const spatial_index spatial(db);
  std::vector<symbolic_image> queries;
  std::vector<be_string2d> strings;
  std::vector<std::vector<image_id>> sets;
  for (std::uint64_t s = 0; s < 6; ++s) {
    queries.push_back(distorted_query(db, s, 0.8));
    strings.push_back(encode(queries.back()));
    sets.push_back(combined_candidates(db, spatial, queries.back(), 16));
  }
  for (bool pruning : {false, true}) {
    for (unsigned threads : {1u, 4u}) {
      query_options options;
      options.top_k = 5;
      options.histogram_pruning = pruning;
      options.threads = threads;
      std::vector<search_stats> batch_stats;
      const auto batched =
          search_batch_candidates(db, strings, sets, options, &batch_stats);
      ASSERT_EQ(batched.size(), queries.size());
      ASSERT_EQ(batch_stats.size(), queries.size());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        search_stats single_stats;
        EXPECT_EQ(batched[i], search_candidates(db, strings[i], sets[i],
                                                options, &single_stats))
            << "query " << i << " pruning=" << pruning
            << " threads=" << threads;
        EXPECT_EQ(batch_stats[i].scanned, sets[i].size());
        EXPECT_EQ(batch_stats[i].scanned, single_stats.scanned);
        EXPECT_EQ(batch_stats[i].scored + batch_stats[i].pruned,
                  batch_stats[i].scanned);
      }
    }
  }
}

TEST(SearchBatchCandidates, CombinedConvenienceMatchesManualPrefilter) {
  const image_database db = sibling_corpus(15);
  const spatial_index spatial(db);
  std::vector<symbolic_image> queries;
  for (std::uint64_t s = 0; s < 4; ++s) {
    queries.push_back(distorted_query(db, s, 0.8));
  }
  query_options options;
  options.top_k = 5;
  options.threads = 2;
  std::vector<search_stats> stats;
  const auto batched =
      search_batch_combined(db, spatial, queries, 16, options, &stats);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto set = combined_candidates(db, spatial, queries[i], 16);
    EXPECT_EQ(batched[i],
              search_candidates(db, encode(queries[i]), set, options))
        << "query " << i;
    EXPECT_EQ(stats[i].scanned, set.size()) << "query " << i;
  }
}

TEST(SearchBatchCandidates, ValidatesSizesAndIdRange) {
  const image_database db = sibling_corpus(3);
  const std::vector<be_string2d> strings(2);
  {
    const std::vector<std::vector<image_id>> sets(1);
    EXPECT_THROW((void)search_batch_candidates(db, strings, sets),
                 std::invalid_argument);
  }
  {
    const std::vector<std::vector<image_id>> sets = {
        {0}, {static_cast<image_id>(db.size())}};
    EXPECT_THROW((void)search_batch_candidates(db, strings, sets),
                 std::out_of_range);
  }
}

TEST(SearchBatch, PreEncodedOverloadValidatesSizes) {
  const image_database db = sibling_corpus(3);
  const std::vector<be_string2d> strings(2);
  const std::vector<std::vector<symbol_id>> symbols(1);
  EXPECT_THROW((void)search_batch(db, strings, symbols),
               std::invalid_argument);
}

TEST(SearchBatch, EmptyBatchIsFine) {
  const image_database db = sibling_corpus(3);
  std::vector<search_stats> stats;
  EXPECT_TRUE(
      search_batch(db, std::span<const symbolic_image>{}, {}, &stats).empty());
  EXPECT_TRUE(stats.empty());
}

}  // namespace
}  // namespace bes
