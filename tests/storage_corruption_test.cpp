// Corruption battery for the BSEG1 segment format: ~200 seeded cases flip
// bytes anywhere in the file or truncate it mid-record. Every case must
// either throw std::runtime_error or (tail truncation, recovery mode)
// recover cleanly to a CRC-verified prefix of the original records — never
// crash, never materialize a silently wrong database. Runs under the ASan
// CI job like every other suite.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "db/segment.hpp"
#include "db/storage.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace bes {
namespace {

namespace fs = std::filesystem;

fs::path temp_file(const char* stem) {
  return fs::temp_directory_path() /
         (std::string("bestring_fuzz_") + stem + "_" + std::to_string(::getpid()));
}

image_database build_db() {
  image_database db;
  for (std::size_t i = 0; i < 8; ++i) {
    testsupport::scene_opts opts;
    opts.object_count = 3 + i % 4;
    db.add("scene " + std::to_string(i),
           testsupport::make_scene(i + 100, db.symbols(), opts));
  }
  db.add("blank", symbolic_image(16, 16));
  return db;
}

std::string segment_bytes(const image_database& db, const fs::path& path) {
  save_database(db, path, db_format::binary);
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Recovery must yield a prefix of the original database, verified record by
// record — anything else is a silently wrong result.
void expect_valid_prefix(const image_database& recovered,
                         const image_database& original) {
  ASSERT_LE(recovered.size(), original.size());
  ASSERT_LE(recovered.symbols().size(), original.symbols().size());
  for (std::size_t s = 0; s < recovered.symbols().size(); ++s) {
    EXPECT_EQ(recovered.symbols().names()[s], original.symbols().names()[s]);
  }
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    const auto id = static_cast<image_id>(i);
    EXPECT_EQ(recovered.record(id).name, original.record(id).name);
    EXPECT_EQ(recovered.record(id).image, original.record(id).image);
    EXPECT_EQ(recovered.record(id).strings, original.record(id).strings);
  }
}

class SegmentCorruption : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    original_ = new image_database(build_db());
    base_path_ = new fs::path(temp_file("base"));
    bytes_ = new std::string(segment_bytes(*original_, *base_path_));
  }
  static void TearDownTestSuite() {
    fs::remove(*base_path_);
    delete bytes_;
    delete base_path_;
    delete original_;
    bytes_ = nullptr;
    base_path_ = nullptr;
    original_ = nullptr;
  }

  static image_database* original_;
  static fs::path* base_path_;
  static std::string* bytes_;
};

image_database* SegmentCorruption::original_ = nullptr;
fs::path* SegmentCorruption::base_path_ = nullptr;
std::string* SegmentCorruption::bytes_ = nullptr;

TEST_F(SegmentCorruption, SeededByteFlipsAlwaysFailClosed) {
  const auto path = temp_file("flip");
  std::size_t strict_throws = 0;
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    rng r(seed + 1);
    std::string corrupt = *bytes_;
    const auto pos = static_cast<std::size_t>(
        r.uniform_int(0, static_cast<int>(corrupt.size()) - 1));
    const auto mask = static_cast<char>(r.uniform_int(1, 255));
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ mask);
    write_bytes(path, corrupt);

    // Strict load: every flip must throw, wherever it lands.
    EXPECT_THROW((void)load_database(path), std::runtime_error)
        << "flip seed " << seed << " at byte " << pos << " loaded anyway";
    ++strict_throws;

    // Recovery mode may salvage records before the flip, but whatever it
    // returns must be a verified prefix — or it throws too.
    try {
      const image_database recovered =
          load_segment(path, segment_read_options{.recover_tail = true});
      expect_valid_prefix(recovered, *original_);
    } catch (const std::runtime_error&) {
      // Equally acceptable: failing closed.
    }
  }
  EXPECT_EQ(strict_throws, 150u);
  fs::remove(path);
}

TEST_F(SegmentCorruption, SeededTruncationsRecoverToLastValidRecord) {
  const auto path = temp_file("trunc");
  std::size_t recovered_records = 0;
  std::size_t recovered_cases = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    rng r(seed + 500);
    const auto cut = static_cast<std::size_t>(
        r.uniform_int(1, static_cast<int>(bytes_->size()) - 1));
    write_bytes(path, bytes_->substr(0, cut));

    // Strict load: a truncated segment has no valid footer tail.
    EXPECT_THROW((void)load_database(path), std::runtime_error)
        << "truncation to " << cut << " bytes loaded strictly";

    // Recovery: anything past the file header scans to a verified prefix.
    try {
      const image_database recovered =
          load_segment(path, segment_read_options{.recover_tail = true});
      expect_valid_prefix(recovered, *original_);
      ++recovered_cases;
      recovered_records += recovered.size();
    } catch (const std::runtime_error&) {
      // Cuts inside the 8-byte file header cannot even prove the format;
      // throwing is the correct fail-closed answer there.
      EXPECT_LT(cut, std::size_t{8})
          << "truncation to " << cut << " bytes refused recovery";
    }
  }
  // The battery must actually demonstrate recovery, not just rejection:
  // most cuts land mid-file and salvage a nonempty prefix.
  EXPECT_GT(recovered_cases, 40u);
  EXPECT_GT(recovered_records, 0u);
  fs::remove(path);
}

// Appending after a crash: recover the valid prefix, compact it, and the
// result is a loadable segment again (the besdb compact --recover path).
TEST_F(SegmentCorruption, RecoveredPrefixRoundTripsThroughCompact) {
  const auto trunc_path = temp_file("compact_in");
  const auto out_path = temp_file("compact_out");
  // Cut half way: loses the footer and some tail records.
  write_bytes(trunc_path, bytes_->substr(0, bytes_->size() / 2));
  const segment_reader reader(trunc_path,
                              segment_read_options{.recover_tail = true});
  EXPECT_TRUE(reader.recovered());
  const image_database salvaged = materialize_segment(reader);
  expect_valid_prefix(salvaged, *original_);
  save_database(salvaged, out_path, db_format::binary);
  expect_valid_prefix(load_database(out_path), *original_);
  fs::remove(trunc_path);
  fs::remove(out_path);
}

// Repeated crash/recover/append cycles against ONE segment file: each round
// tears random tail bytes off, reopens the writer in recover-append mode
// (which must physically truncate the torn bytes before writing), appends
// fresh records, and strictly reopens. Torn records must never resurrect
// under the newly appended data, in any round.
TEST_F(SegmentCorruption, RecoverAppendRoundsNeverResurrectTornRecords) {
  const auto path = temp_file("rounds");
  write_bytes(path, *bytes_);
  // The expected record sequence, as indices into *original_ (appends
  // re-add original records, so every position maps back to one).
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < original_->size(); ++i) live.push_back(i);

  rng r(2026);
  for (int round = 0; round < 6; ++round) {
    // Crash: tear a random chunk off the tail, keeping at least the header.
    std::ifstream in(path, std::ios::binary);
    const std::string cur((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    in.close();
    const auto cut = static_cast<std::size_t>(
        r.uniform_int(9, static_cast<int>(cur.size()) - 1));
    write_bytes(path, cur.substr(0, cut));
    EXPECT_THROW((void)load_database(path), std::runtime_error)
        << "round " << round << " cut " << cut << " loaded strictly";

    {
      segment_writer writer(path, /*append=*/true,
                            segment_read_options{.recover_tail = true});
      const std::size_t salvaged = writer.images_written();
      ASSERT_LE(salvaged, live.size()) << "round " << round;
      live.resize(salvaged);
      for (int a = 0; a < 2; ++a) {
        const auto idx = static_cast<std::size_t>(
            r.uniform_int(0, static_cast<int>(original_->size()) - 1));
        writer.append(original_->record(static_cast<image_id>(idx)),
                      original_->symbols());
        live.push_back(idx);
      }
      writer.finish();
    }

    // Strict reopen must succeed — recovery physically truncated the torn
    // bytes, so nothing stale can hide beneath the appended records — and
    // hold exactly the salvaged prefix plus the appends.
    const image_database loaded = load_database(path);
    ASSERT_EQ(loaded.size(), live.size()) << "round " << round;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const auto got = static_cast<image_id>(i);
      const auto want = static_cast<image_id>(live[i]);
      EXPECT_EQ(loaded.record(got).name, original_->record(want).name);
      EXPECT_EQ(loaded.record(got).strings, original_->record(want).strings);
      EXPECT_EQ(loaded.record(got).image, original_->record(want).image);
    }
  }
  fs::remove(path);
}

}  // namespace
}  // namespace bes
