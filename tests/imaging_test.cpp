#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "imaging/extract.hpp"
#include "imaging/pnm.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

std::filesystem::path temp_file(const char* stem) {
  return std::filesystem::temp_directory_path() /
         (std::string("bestring_test_") + stem + "_" +
          std::to_string(::getpid()));
}

// ---------------------------------------------------------------- image

TEST(Image, FillAndAccess) {
  image8 img(4, 3, 7);
  EXPECT_EQ(img.at(0, 0), 7);
  img.at(3, 2) = 42;
  EXPECT_EQ(img.at(3, 2), 42);
  EXPECT_THROW((void)img.at(4, 0), std::out_of_range);
  EXPECT_THROW((void)img.at(0, 3), std::out_of_range);
  EXPECT_THROW(image8(0, 3), std::invalid_argument);
}

TEST(ImageRgb, FillAndAccess) {
  image_rgb img(2, 2, rgb{1, 2, 3});
  EXPECT_EQ(img.at(1, 1), (rgb{1, 2, 3}));
  img.at(0, 1) = rgb{9, 8, 7};
  EXPECT_EQ(img.at(0, 1), (rgb{9, 8, 7}));
}

// ---------------------------------------------------------------- pnm

TEST(Pnm, PgmBinaryRoundTrip) {
  image8 img(5, 4, 0);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 5; ++c) img.at(c, r) = static_cast<std::uint8_t>(r * 5 + c);
  }
  const auto path = temp_file("roundtrip.pgm");
  write_pgm(path, img);
  EXPECT_EQ(read_pgm(path), img);
  std::filesystem::remove(path);
}

TEST(Pnm, PpmBinaryRoundTrip) {
  image_rgb img(3, 2);
  img.at(0, 0) = rgb{255, 0, 0};
  img.at(2, 1) = rgb{0, 0, 255};
  const auto path = temp_file("roundtrip.ppm");
  write_ppm(path, img);
  EXPECT_EQ(read_ppm(path), img);
  std::filesystem::remove(path);
}

TEST(Pnm, ReadsAsciiPgmWithComments) {
  const auto path = temp_file("ascii.pgm");
  {
    std::ofstream out(path);
    out << "P2\n# a comment\n3 2\n255\n0 1 2\n3 4 5\n";
  }
  const image8 img = read_pgm(path);
  EXPECT_EQ(img.width(), 3);
  EXPECT_EQ(img.height(), 2);
  EXPECT_EQ(img.at(2, 1), 5);
  std::filesystem::remove(path);
}

TEST(Pnm, ReadsAsciiPpm) {
  const auto path = temp_file("ascii.ppm");
  {
    std::ofstream out(path);
    out << "P3\n2 1\n255\n255 0 0  0 255 0\n";
  }
  const image_rgb img = read_ppm(path);
  EXPECT_EQ(img.at(0, 0), (rgb{255, 0, 0}));
  EXPECT_EQ(img.at(1, 0), (rgb{0, 255, 0}));
  std::filesystem::remove(path);
}

TEST(Pnm, RejectsMissingFileAndBadMagic) {
  EXPECT_THROW((void)read_pgm("/nonexistent/nope.pgm"), std::runtime_error);
  const auto path = temp_file("bad.pgm");
  {
    std::ofstream out(path);
    out << "P7\n1 1\n255\n0\n";
  }
  EXPECT_THROW((void)read_pgm(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Pnm, RejectsTruncatedData) {
  const auto path = temp_file("trunc.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n4 4\n255\nab";  // 2 bytes instead of 16
  }
  EXPECT_THROW((void)read_pgm(path), std::runtime_error);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- ccl

TEST(Ccl, EmptyImageHasNoComponents) {
  const labeling l = label_components(image8(5, 5, 255), 255);
  EXPECT_EQ(l.component_count, 0);
}

TEST(Ccl, SingleBlob) {
  image8 img(5, 5, 255);
  img.at(1, 1) = 10;
  img.at(2, 1) = 10;
  img.at(2, 2) = 10;
  const labeling l = label_components(img, 255);
  EXPECT_EQ(l.component_count, 1);
  EXPECT_EQ(l.at(1, 1, 5), l.at(2, 2, 5));
  EXPECT_EQ(l.at(0, 0, 5), -1);
}

TEST(Ccl, DiagonalPixelsAreSeparate) {
  image8 img(4, 4, 255);
  img.at(0, 0) = 10;
  img.at(1, 1) = 10;  // 4-connectivity: diagonal does not connect
  const labeling l = label_components(img, 255);
  EXPECT_EQ(l.component_count, 2);
}

TEST(Ccl, TouchingDifferentValuesStaySeparate) {
  image8 img(4, 1, 255);
  img.at(0, 0) = 10;
  img.at(1, 0) = 20;  // adjacent but different gray
  const labeling l = label_components(img, 255);
  EXPECT_EQ(l.component_count, 2);
  EXPECT_NE(l.at(0, 0, 4), l.at(1, 0, 4));
}

TEST(Ccl, UShapeMergesAcrossRows) {
  // A U-shape forces a union between two provisional labels.
  image8 img(3, 3, 255);
  img.at(0, 0) = 5;
  img.at(2, 0) = 5;
  img.at(0, 1) = 5;
  img.at(2, 1) = 5;
  img.at(0, 2) = 5;
  img.at(1, 2) = 5;
  img.at(2, 2) = 5;
  const labeling l = label_components(img, 255);
  EXPECT_EQ(l.component_count, 1);
}

// ---------------------------------------------------------------- extract

TEST(Extract, SingleRectangleRecoversExactMbr) {
  alphabet names;
  symbolic_image scene(16, 12);
  const symbol_id a = names.intern("A");
  scene.add(a, rect::checked(3, 7, 2, 9));
  const rendered_scene rendered = render_scene(scene);
  const symbolic_image extracted = extract_icons(rendered);
  ASSERT_EQ(extracted.size(), 1u);
  EXPECT_EQ(extracted.icons()[0].symbol, a);
  EXPECT_EQ(extracted.icons()[0].mbr, rect::checked(3, 7, 2, 9));
}

TEST(Extract, UnknownGraysAreSkipped) {
  image8 img(8, 8, 255);
  img.at(1, 1) = 10;  // no mapping registered
  const symbolic_image out = extract_icons(img, 255, {});
  EXPECT_TRUE(out.empty());
}

TEST(Extract, RendererRejectsTooManyInstances) {
  alphabet names;
  symbolic_image scene(512, 2);
  const symbol_id a = names.intern("A");
  for (int i = 0; i < 255; ++i) {
    scene.add(a, rect::checked(i * 2, i * 2 + 1, 0, 1));
  }
  EXPECT_THROW((void)render_scene(scene), std::invalid_argument);
}

// The pipeline property: render -> extract is the identity on disjoint
// scenes (up to icon order).
class ExtractRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractRoundTrip, DisjointScenesSurviveExactly) {
  rng r(GetParam());
  alphabet names;
  scene_params params;
  params.width = 96;
  params.height = 72;
  params.object_count = 8;
  params.max_extent = 20;
  params.disjoint = true;
  const symbolic_image scene = random_scene(params, r, names);
  const symbolic_image extracted = extract_icons(render_scene(scene));
  ASSERT_EQ(extracted.size(), scene.size());
  // Compare as multisets of icons.
  auto key = [](const icon& i) {
    return std::tuple(i.symbol, i.mbr.x.lo, i.mbr.x.hi, i.mbr.y.lo, i.mbr.y.hi);
  };
  std::vector<std::tuple<symbol_id, int, int, int, int>> want, got;
  for (const icon& i : scene.icons()) want.push_back(key(i));
  for (const icon& i : extracted.icons()) got.push_back(key(i));
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(want, got);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(Extract, OcclusionSplitsPaintedOverObject) {
  // Overlap: the later icon paints over the earlier; the earlier icon's
  // remaining pixels may form several components, each with its symbol.
  alphabet names;
  symbolic_image scene(20, 10);
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  scene.add(a, rect::checked(0, 20, 3, 6));   // horizontal bar
  scene.add(b, rect::checked(8, 12, 0, 10));  // vertical bar over it
  const symbolic_image extracted = extract_icons(render_scene(scene));
  // A is split into two pieces; B stays whole: 3 icons.
  EXPECT_EQ(extracted.size(), 3u);
  std::size_t a_count = 0;
  for (const icon& i : extracted.icons()) {
    a_count += i.symbol == a ? 1 : 0;
  }
  EXPECT_EQ(a_count, 2u);
}

TEST(Extract, EllipseAndDiamondShapesStayInsideMbr) {
  alphabet names;
  symbolic_image scene(32, 32);
  const symbol_id a = names.intern("A");
  scene.add(a, rect::checked(4, 20, 6, 26));
  for (icon_shape shape : {icon_shape::ellipse, icon_shape::diamond}) {
    render_options options;
    options.shape = shape;
    const rendered_scene rendered = render_scene(scene, options);
    const symbolic_image extracted = extract_icons(rendered);
    ASSERT_GE(extracted.size(), 1u);
    for (const icon& i : extracted.icons()) {
      EXPECT_TRUE(contains(scene.icons()[0].mbr, i.mbr));
    }
  }
}

TEST(RenderPreview, PaintsIconPixels) {
  alphabet names;
  symbolic_image scene(10, 10);
  scene.add(names.intern("A"), rect::checked(2, 8, 2, 8));
  const image_rgb preview = render_preview(scene);
  // Interior pixel differs from untouched background.
  EXPECT_NE(preview.at(5, 5), (rgb{250, 250, 250}));
  EXPECT_EQ(preview.at(0, 0), (rgb{250, 250, 250}));
}

}  // namespace
}  // namespace bes
