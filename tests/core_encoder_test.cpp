#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "core/serializer.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

// The paper's Figure 1 / §3.1 worked example, reconstructed from the stated
// dummy placements: on the x-axis there is a gap before A's begin and after
// B's end, and A's end coincides with C's begin; on the y-axis B's end
// coincides with C's begin.
symbolic_image figure1_scene(alphabet& names) {
  symbolic_image img(12, 11);
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  const symbol_id c = names.intern("C");
  img.add(a, rect::checked(2, 6, 3, 9));
  img.add(b, rect::checked(4, 10, 1, 5));
  img.add(c, rect::checked(6, 8, 5, 7));
  return img;
}

TEST(Encoder, Figure1MatchesPaperExample) {
  alphabet names;
  const be_string2d s = encode(figure1_scene(names));
  EXPECT_EQ(paper_style(s.x, names), "EAbEBbEAeCbECeEBeE");
  EXPECT_EQ(paper_style(s.y, names), "EBbEAbEBeCbECeEAeE");
  EXPECT_TRUE(s.well_formed());
}

TEST(Encoder, Figure1CoincidentBoundariesGetNoDummy) {
  alphabet names;
  const be_string2d s = encode(figure1_scene(names));
  // x-axis: ... A:e C:b adjacent with no dummy between them.
  const auto& x = s.x.tokens();
  const symbol_id a = names.id_of("A");
  const symbol_id c = names.id_of("C");
  bool found = false;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    if (!x[i].is_dummy() && x[i].symbol() == a &&
        x[i].kind() == boundary_kind::end && !x[i + 1].is_dummy() &&
        x[i + 1].symbol() == c && x[i + 1].kind() == boundary_kind::begin) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Encoder, EmptyImageIsOneGapPerAxis) {
  const be_string2d s = encode(symbolic_image(10, 10));
  ASSERT_EQ(s.x.size(), 1u);
  ASSERT_EQ(s.y.size(), 1u);
  EXPECT_TRUE(s.x.at(0).is_dummy());
  EXPECT_TRUE(s.y.at(0).is_dummy());
}

TEST(Encoder, FullDomainObjectHasInteriorDummyOnly) {
  alphabet names;
  symbolic_image img(10, 10);
  img.add(names.intern("A"), rect::checked(0, 10, 0, 10));
  const be_string2d s = encode(img);
  // A:b E A:e — flush edges, one interior gap: 2n+1 = 3 tokens.
  ASSERT_EQ(s.x.size(), 3u);
  EXPECT_FALSE(s.x.at(0).is_dummy());
  EXPECT_TRUE(s.x.at(1).is_dummy());
  EXPECT_FALSE(s.x.at(2).is_dummy());
}

TEST(Encoder, InteriorObjectHasEdgeDummies) {
  alphabet names;
  symbolic_image img(10, 10);
  img.add(names.intern("A"), rect::checked(3, 6, 4, 7));
  const be_string2d s = encode(img);
  // E A:b E A:e E = 5 tokens = 4n+1 for n=1.
  EXPECT_EQ(s.x.size(), 5u);
  EXPECT_EQ(s.y.size(), 5u);
  EXPECT_TRUE(s.x.at(0).is_dummy());
  EXPECT_TRUE(s.x.at(4).is_dummy());
}

TEST(Encoder, BestCaseSceneHits2nPlus1) {
  alphabet names;
  for (std::size_t n : {1u, 2u, 5u, 16u}) {
    const be_string2d s = encode(best_case_scene(n, names));
    EXPECT_EQ(s.x.size(), 2 * n + 1) << "n=" << n;
    EXPECT_EQ(s.y.size(), 2 * n + 1) << "n=" << n;
  }
}

TEST(Encoder, WorstCaseSceneHits4nPlus1) {
  alphabet names;
  for (std::size_t n : {1u, 2u, 5u, 16u}) {
    const be_string2d s = encode(worst_case_scene(n, names));
    EXPECT_EQ(s.x.size(), max_axis_tokens(n)) << "n=" << n;
    EXPECT_EQ(s.y.size(), max_axis_tokens(n)) << "n=" << n;
  }
}

TEST(Encoder, TieBreakOrdersBySymbolThenKind) {
  alphabet names;
  symbolic_image img(10, 10);
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  // Both objects share every boundary coordinate.
  img.add(b, rect::checked(2, 8, 2, 8));
  img.add(a, rect::checked(2, 8, 2, 8));
  const be_string2d s = encode(img);
  // Run at coord 2: A:b then B:b (symbol order), run at 8: A:e then B:e.
  ASSERT_EQ(s.x.size(), 7u);  // E A:b B:b E A:e B:e E
  EXPECT_TRUE(s.x.at(0).is_dummy());
  EXPECT_EQ(s.x.at(1), token::boundary(a, boundary_kind::begin));
  EXPECT_EQ(s.x.at(2), token::boundary(b, boundary_kind::begin));
  EXPECT_TRUE(s.x.at(3).is_dummy());
  EXPECT_EQ(s.x.at(4), token::boundary(a, boundary_kind::end));
  EXPECT_EQ(s.x.at(5), token::boundary(b, boundary_kind::end));
  EXPECT_TRUE(s.x.at(6).is_dummy());
}

TEST(Encoder, SameSymbolBeginBeforeEndOnTie) {
  alphabet names;
  symbolic_image img(10, 10);
  const symbol_id a = names.intern("A");
  // First instance ends exactly where the second begins.
  img.add(a, rect::checked(0, 5, 0, 10));
  img.add(a, rect::checked(5, 10, 0, 10));
  const be_string2d s = encode(img);
  // x: A:b E A:b A:e E A:e (begin sorts before end at coord 5).
  ASSERT_EQ(s.x.size(), 6u);
  EXPECT_EQ(s.x.at(2), token::boundary(a, boundary_kind::begin));
  EXPECT_EQ(s.x.at(3), token::boundary(a, boundary_kind::end));
  EXPECT_TRUE(s.x.well_formed());
}

TEST(Encoder, RenderAxisRejectsBadDomain) {
  EXPECT_THROW((void)render_axis({}, 0), std::invalid_argument);
}

// Property sweep: random scenes obey the storage bounds and well-formedness.
class EncoderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncoderProperty, BoundsAndWellFormedness) {
  rng r(GetParam());
  alphabet names;
  scene_params params;
  params.object_count = static_cast<std::size_t>(r.uniform_int(0, 40));
  params.symbol_pool = 6;
  params.grid = r.chance(0.5) ? 8 : 0;
  const symbolic_image scene = random_scene(params, r, names);
  const be_string2d s = encode(scene);
  const std::size_t n = scene.size();
  if (n == 0) {
    EXPECT_EQ(s.x.size(), 1u);
  } else {
    EXPECT_GE(s.x.size(), min_axis_tokens(n));
    EXPECT_LE(s.x.size(), max_axis_tokens(n));
    EXPECT_GE(s.y.size(), min_axis_tokens(n));
    EXPECT_LE(s.y.size(), max_axis_tokens(n));
    EXPECT_EQ(s.x.boundary_count(), 2 * n);
    EXPECT_EQ(s.y.boundary_count(), 2 * n);
  }
  EXPECT_TRUE(s.well_formed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderProperty,
                         ::testing::Range<std::uint64_t>(0, 50));

// Encoding must be a pure function of the icon SET (order-independent).
TEST(Encoder, InsertionOrderIrrelevant) {
  alphabet names;
  rng r(99);
  scene_params params;
  params.object_count = 12;
  const symbolic_image scene = random_scene(params, r, names);
  symbolic_image shuffled(scene.width(), scene.height());
  std::vector<icon> icons = scene.icons();
  r.shuffle(icons);
  for (const icon& obj : icons) shuffled.add(obj);
  EXPECT_EQ(encode(scene), encode(shuffled));
}

}  // namespace
}  // namespace bes
