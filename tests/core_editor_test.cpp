#include <gtest/gtest.h>

#include "core/editor.hpp"
#include "core/encoder.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

TEST(Editor, EmptyEditorRendersGapStrings) {
  be_editor ed(10, 10);
  const be_string2d s = ed.strings();
  ASSERT_EQ(s.x.size(), 1u);
  EXPECT_TRUE(s.x.at(0).is_dummy());
}

TEST(Editor, ConstructFromImageMatchesEncode) {
  alphabet names;
  rng r(5);
  scene_params params;
  params.object_count = 10;
  const symbolic_image scene = random_scene(params, r, names);
  be_editor ed(scene);
  EXPECT_EQ(ed.strings(), encode(scene));
  EXPECT_EQ(ed.image(), scene);
}

TEST(Editor, InsertMatchesReencode) {
  alphabet names;
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  be_editor ed(20, 20);
  symbolic_image reference(20, 20);
  ed.insert(a, rect::checked(2, 6, 3, 9));
  reference.add(a, rect::checked(2, 6, 3, 9));
  EXPECT_EQ(ed.strings(), encode(reference));
  ed.insert(b, rect::checked(6, 10, 9, 12));  // shares a boundary with A
  reference.add(b, rect::checked(6, 10, 9, 12));
  EXPECT_EQ(ed.strings(), encode(reference));
}

TEST(Editor, InsertValidatesMbr) {
  be_editor ed(10, 10);
  EXPECT_THROW((void)ed.insert(0, rect{interval{3, 3}, interval{0, 1}}),
               std::invalid_argument);
  EXPECT_THROW((void)ed.insert(0, rect::checked(0, 11, 0, 5)),
               std::invalid_argument);
}

TEST(Editor, EraseRemovesAndEliminatesRedundantDummies) {
  alphabet names;
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  be_editor ed(20, 20);
  const instance_id ia = ed.insert(a, rect::checked(2, 6, 2, 6));
  ed.insert(b, rect::checked(10, 14, 10, 14));
  ASSERT_TRUE(ed.erase(ia));
  symbolic_image reference(20, 20);
  reference.add(b, rect::checked(10, 14, 10, 14));
  EXPECT_EQ(ed.strings(), encode(reference));
  EXPECT_EQ(ed.size(), 1u);
}

TEST(Editor, EraseUnknownIdReturnsFalse) {
  be_editor ed(10, 10);
  EXPECT_FALSE(ed.erase(123));
}

TEST(Editor, EraseFirstPicksLowestXBegin) {
  alphabet names;
  const symbol_id a = names.intern("A");
  be_editor ed(20, 20);
  ed.insert(a, rect::checked(8, 12, 0, 4));
  const instance_id leftmost = ed.insert(a, rect::checked(1, 5, 5, 9));
  const auto erased = ed.erase_first(a);
  ASSERT_TRUE(erased.has_value());
  EXPECT_EQ(*erased, leftmost);
  EXPECT_EQ(ed.size(), 1u);
}

TEST(Editor, EraseFirstUnknownSymbol) {
  be_editor ed(10, 10);
  EXPECT_FALSE(ed.erase_first(42).has_value());
}

// The headline property (paper §3.2): any interleaving of inserts and
// erases leaves the editor's string identical to a fresh full re-encode.
class EditorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EditorProperty, IncrementalAlwaysEqualsReencode) {
  rng r(GetParam());
  alphabet names;
  const int domain = 64;
  be_editor ed(domain, domain);
  std::vector<instance_id> live;

  for (int step = 0; step < 60; ++step) {
    const bool do_insert = live.empty() || r.chance(0.65);
    if (do_insert) {
      const int w = r.uniform_int(1, 16);
      const int h = r.uniform_int(1, 16);
      const int x = r.uniform_int(0, domain - w);
      const int y = r.uniform_int(0, domain - h);
      const auto symbol = static_cast<symbol_id>(r.uniform_int(0, 4));
      live.push_back(
          ed.insert(symbol, rect{interval{x, x + w}, interval{y, y + h}}));
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          r.uniform_int(0, static_cast<int>(live.size()) - 1));
      ASSERT_TRUE(ed.erase(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    EXPECT_EQ(ed.strings(), encode(ed.image())) << "step " << step;
    EXPECT_EQ(ed.size(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditorProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace bes
