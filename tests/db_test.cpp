#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "db/prefilter.hpp"
#include "db/query.hpp"
#include "db/segment.hpp"
#include "db/storage.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

std::filesystem::path temp_file(const char* stem) {
  return std::filesystem::temp_directory_path() /
         (std::string("bestring_db_") + stem + "_" + std::to_string(::getpid()));
}

symbolic_image scene_with(alphabet& names,
                          std::initializer_list<const char*> symbols) {
  symbolic_image img(64, 64);
  int offset = 0;
  for (const char* s : symbols) {
    img.add(names.intern(s),
            rect::checked(offset, offset + 6, offset, offset + 6));
    offset += 8;
  }
  return img;
}

image_database sample_db() {
  image_database db;
  db.add("ab", scene_with(db.symbols(), {"A", "B"}));
  db.add("bc", scene_with(db.symbols(), {"B", "C"}));
  db.add("cd", scene_with(db.symbols(), {"C", "D"}));
  return db;
}

// ---------------------------------------------------------------- basics

TEST(Database, AddAssignsDenseIds) {
  image_database db = sample_db();
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.record(0).name, "ab");
  EXPECT_EQ(db.record(2).name, "cd");
  EXPECT_THROW((void)db.record(3), std::out_of_range);
}

TEST(Database, StringsEncodedOnInsert) {
  image_database db = sample_db();
  EXPECT_EQ(db.record(0).strings, encode(db.record(0).image));
  EXPECT_TRUE(db.record(0).strings.well_formed());
}

TEST(Database, CandidatesViaIndex) {
  image_database db = sample_db();
  alphabet& names = db.symbols();
  const std::vector<symbol_id> query_b = {names.id_of("B")};
  EXPECT_EQ(db.candidates(query_b), (std::vector<image_id>{0, 1}));
  const std::vector<symbol_id> query_ad = {names.id_of("A"), names.id_of("D")};
  EXPECT_EQ(db.candidates(query_ad), (std::vector<image_id>{0, 2}));
}

TEST(Database, CandidatesForUnknownSymbolEmpty) {
  image_database db = sample_db();
  const std::vector<symbol_id> unknown = {999};
  EXPECT_TRUE(db.candidates(unknown).empty());
}

TEST(InvertedIndex, DeduplicatesWithinImage) {
  inverted_index index;
  const std::vector<symbol_id> symbols = {1, 1, 2};
  index.add(0, symbols);
  EXPECT_EQ(index.postings(1), 1u);
  EXPECT_EQ(index.postings(2), 1u);
  EXPECT_EQ(index.postings(3), 0u);
  EXPECT_EQ(index.distinct_symbols(), 2u);
}

// ---------------------------------------------------------------- search

TEST(Search, ExactCopyRanksFirstWithScoreOne) {
  image_database db = sample_db();
  const auto results = search(db, db.record(1).image);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_DOUBLE_EQ(results[0].score, 1.0);
}

TEST(Search, TopKTruncates) {
  image_database db = sample_db();
  query_options options;
  options.top_k = 1;
  EXPECT_EQ(search(db, db.record(0).image, options).size(), 1u);
}

TEST(Search, MinScoreFilters) {
  image_database db = sample_db();
  query_options options;
  options.min_score = 1.01;  // nothing can reach this
  EXPECT_TRUE(search(db, db.record(0).image, options).empty());
}

TEST(Search, IndexOffScansEverything) {
  image_database db = sample_db();
  alphabet& names = db.symbols();
  // Query with a symbol absent from the db: index returns nothing, full
  // scan still scores everything (dummy matches only).
  symbolic_image query(64, 64);
  query.add(names.intern("Z"), rect::checked(0, 6, 0, 6));
  query_options with_index;
  query_options without_index;
  without_index.use_index = false;
  without_index.top_k = 0;
  EXPECT_TRUE(search(db, query, with_index).empty());
  EXPECT_EQ(search(db, query, without_index).size(), db.size());
}

TEST(Search, ParallelMatchesSerial) {
  image_database db;
  rng r(3);
  scene_params params;
  params.object_count = 6;
  params.symbol_pool = 4;
  for (int i = 0; i < 40; ++i) {
    db.add("img" + std::to_string(i),
           random_scene(params, r, db.symbols()));
  }
  const symbolic_image& query = db.record(7).image;
  query_options serial;
  serial.top_k = 0;
  query_options parallel = serial;
  parallel.threads = 4;
  EXPECT_EQ(search(db, query, serial), search(db, query, parallel));
}

TEST(Search, TransformInvariantFindsRotatedImage) {
  image_database db;
  rng r(4);
  scene_params params;
  params.object_count = 6;
  params.symbol_pool = 6;
  const symbolic_image original = random_scene(params, r, db.symbols());
  db.add("original", original);
  db.add("rotated", apply(dihedral::rot90, original));
  db.add("other", random_scene(params, r, db.symbols()));

  query_options plain;
  plain.top_k = 0;
  const auto without = search(db, original, plain);
  query_options invariant = plain;
  invariant.transform_invariant = true;
  const auto with = search(db, original, invariant);

  auto score_of = [](const std::vector<query_result>& rs, image_id id) {
    for (const auto& r : rs) {
      if (r.id == id) return r.score;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(score_of(with, 1), 1.0);   // rotated copy: perfect match
  EXPECT_LT(score_of(without, 1), 1.0);       // plain search misses it
  // The reported transform maps the query onto the stored image.
  for (const auto& res : with) {
    if (res.id == 1) {
      EXPECT_EQ(apply(res.transform, encode(original)),
                db.record(1).strings);
    }
  }
}

TEST(Search, TiesBrokenByIdAscending) {
  image_database db;
  const symbolic_image img = scene_with(db.symbols(), {"A"});
  db.add("first", img);
  db.add("second", img);  // identical picture
  const auto results = search(db, img);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].score, results[1].score);
  EXPECT_LT(results[0].id, results[1].id);
}

// ----------------------------------------------------- candidate prefilter

TEST(SearchCandidates, ScoresExactlyTheGivenSet) {
  image_database db = sample_db();
  const be_string2d query = db.record(1).strings;
  const std::vector<image_id> subset = {0, 2};  // exclude the true match
  query_options options;
  options.top_k = 0;
  search_stats stats;
  const auto results = search_candidates(db, query, subset, options, &stats);
  EXPECT_EQ(stats.scanned, 2u);
  ASSERT_EQ(results.size(), 2u);
  for (const query_result& r : results) {
    EXPECT_TRUE(r.id == 0 || r.id == 2);
  }
  // The full set reproduces the plain exhaustive scan.
  const std::vector<image_id> all = {0, 1, 2};
  query_options no_index = options;
  no_index.use_index = false;
  EXPECT_EQ(search_candidates(db, query, all, options),
            search(db, db.record(1).image, no_index));
}

TEST(SearchCandidates, RejectsOutOfRangeIds) {
  image_database db = sample_db();
  const std::vector<image_id> bad = {0, 17};
  EXPECT_THROW((void)search_candidates(db, db.record(0).strings, bad),
               std::out_of_range);
}

TEST(SearchCandidates, HonorsPruningAndThreads) {
  image_database db;
  rng r(21);
  scene_params params;
  params.object_count = 6;
  params.symbol_pool = 5;
  for (int i = 0; i < 60; ++i) {
    db.add("img" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  std::vector<image_id> half;
  for (image_id id = 0; id < 60; id += 2) half.push_back(id);
  const be_string2d& query = db.record(8).strings;
  query_options plain;
  plain.top_k = 5;
  query_options tuned = plain;
  tuned.histogram_pruning = true;
  tuned.threads = 4;
  EXPECT_EQ(search_candidates(db, query, half, plain),
            search_candidates(db, query, half, tuned));
}

TEST(Prefilter, IntersectCandidatesIsSortedIntersection) {
  const std::vector<image_id> a = {1, 3, 5, 9};
  const std::vector<image_id> b = {3, 4, 9, 12};
  EXPECT_EQ(intersect_candidates(a, b), (std::vector<image_id>{3, 9}));
  EXPECT_TRUE(intersect_candidates(a, {}).empty());
}

TEST(Prefilter, WindowCandidatesFindsJitteredIconsWithinPad) {
  image_database db;
  alphabet& names = db.symbols();
  symbolic_image scene(100, 100);
  scene.add(names.intern("A"), rect::checked(10, 20, 10, 20));
  db.add("a", scene);
  const spatial_index index(db);

  // Query icon displaced 12px (a 2px gap past its origin): found once the
  // pad bridges the gap, lost unpadded, and never found under the wrong
  // symbol.
  symbolic_image moved(100, 100);
  moved.add(names.id_of("A"), rect::checked(22, 32, 10, 20));
  EXPECT_EQ(window_candidates(index, moved, 4),
            (std::vector<image_id>{0}));
  EXPECT_TRUE(window_candidates(index, moved, 0).empty());
  symbolic_image wrong_symbol(100, 100);
  wrong_symbol.add(names.intern("B"), rect::checked(10, 20, 10, 20));
  EXPECT_TRUE(window_candidates(index, wrong_symbol, 50).empty());
  EXPECT_THROW((void)window_candidates(index, moved, -1),
               std::invalid_argument);
}

// The ROADMAP "Candidate pruning" item: intersect the inverted-index and
// R-tree candidate sets on a 200-scene corpus and measure recall against
// the exhaustive scan. The eval harness records the same quantity per cell
// in the JSON report and gates it against eval/baseline.json; this test
// pins the mechanism at the API level.
TEST(Prefilter, CombinedRecallVsExhaustiveOn200Scenes) {
  image_database db;
  rng r(22);
  scene_params params;
  params.object_count = 8;
  params.symbol_pool = 10;
  params.max_extent = 64;
  for (int i = 0; i < 200; ++i) {
    db.add("img" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  const spatial_index index(db);
  constexpr int pad = 16;
  constexpr std::size_t top_k = 10;
  query_options options;
  options.top_k = top_k;

  double recall_sum = 0.0;
  std::size_t queries = 0;
  std::size_t combined_total = 0;
  for (image_id target = 0; target < 200; target += 10) {
    distortion_params d;
    d.keep_fraction = 0.75;
    d.jitter = 12;  // within pad
    d.seed = 1000 + target;
    alphabet scratch = db.symbols();
    const symbolic_image query = distort(db.record(target).image, d, scratch);
    const be_string2d strings = encode(query);

    const std::vector<image_id> symbol_set = db.candidates(query);
    const std::vector<image_id> window_set =
        window_candidates(index, query, pad);
    const std::vector<image_id> combined =
        combined_candidates(db, index, query, pad);
    // The intersection is exactly symbol ∩ window and no looser than either.
    EXPECT_EQ(combined, intersect_candidates(symbol_set, window_set));
    EXPECT_LE(combined.size(), std::min(symbol_set.size(), window_set.size()));
    combined_total += combined.size();

    query_options exhaustive = options;
    exhaustive.use_index = false;
    const auto want = search(db, query, exhaustive);
    const auto got = search_candidates(db, strings, combined, options);
    ASSERT_EQ(want.size(), top_k);
    std::vector<image_id> want_ids, got_ids;
    for (const auto& qr : want) want_ids.push_back(qr.id);
    for (const auto& qr : got) got_ids.push_back(qr.id);
    std::sort(want_ids.begin(), want_ids.end());
    std::sort(got_ids.begin(), got_ids.end());
    std::vector<image_id> common;
    std::set_intersection(want_ids.begin(), want_ids.end(), got_ids.begin(),
                          got_ids.end(), std::back_inserter(common));
    recall_sum +=
        static_cast<double>(common.size()) / static_cast<double>(top_k);
    // The jittered source image survives the combined filter and stays the
    // scan's top hit: every kept icon moved at most jitter <= pad.
    EXPECT_TRUE(std::binary_search(got_ids.begin(), got_ids.end(), target));
    ASSERT_FALSE(got.empty());
    EXPECT_EQ(got[0].id, target);
    ++queries;
  }
  const double recall = recall_sum / static_cast<double>(queries);
  // The filter must actually filter, yet keep recall well above a token
  // level; the precise loss for the eval corpus distribution lives in
  // eval/baseline.json ("combined/..." cells), not here.
  EXPECT_LT(combined_total, queries * 200);
  EXPECT_GE(recall, 0.5);
  RecordProperty("combined_recall_vs_exhaustive", std::to_string(recall));
}

// ---------------------------------------------------------------- storage

TEST(Storage, SaveLoadRoundTrip) {
  image_database db;
  rng r(5);
  scene_params params;
  params.object_count = 5;
  params.symbol_pool = 4;
  for (int i = 0; i < 10; ++i) {
    db.add("scene " + std::to_string(i),  // names with spaces must survive
           random_scene(params, r, db.symbols()));
  }
  const auto path = temp_file("roundtrip");
  save_database(db, path);
  const image_database loaded = load_database(path);
  ASSERT_EQ(loaded.size(), db.size());
  EXPECT_EQ(loaded.symbols().names(), db.symbols().names());
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto id = static_cast<image_id>(i);
    EXPECT_EQ(loaded.record(id).name, db.record(id).name);
    EXPECT_EQ(loaded.record(id).image, db.record(id).image);
    EXPECT_EQ(loaded.record(id).strings, db.record(id).strings);
  }
  std::filesystem::remove(path);
}

TEST(Storage, LoadedDatabaseAnswersQueriesIdentically) {
  image_database db;
  rng r(6);
  scene_params params;
  params.object_count = 6;
  for (int i = 0; i < 12; ++i) {
    db.add("img", random_scene(params, r, db.symbols()));
  }
  const auto path = temp_file("queries");
  save_database(db, path);
  const image_database loaded = load_database(path);
  const symbolic_image& query = db.record(3).image;
  EXPECT_EQ(search(db, query), search(loaded, query));
  std::filesystem::remove(path);
}

TEST(Storage, RejectsMissingFile) {
  EXPECT_THROW((void)load_database("/nonexistent/x.besdb"),
               std::runtime_error);
}

TEST(Storage, RejectsBadHeader) {
  const auto path = temp_file("badheader");
  {
    std::ofstream out(path);
    out << "NOTADB 1\n";
  }
  EXPECT_THROW((void)load_database(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Storage, RejectsUnknownSymbolReference) {
  const auto path = temp_file("badsymbol");
  {
    std::ofstream out(path);
    out << "BESDB 1\nalphabet 1\nA\nimages 1\nimage 10 10 1 x\n"
        << "icon 7 0 1 0 1\n";  // symbol 7 does not exist
  }
  EXPECT_THROW((void)load_database(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Storage, RejectsTruncatedIconList) {
  const auto path = temp_file("truncated");
  {
    std::ofstream out(path);
    out << "BESDB 1\nalphabet 1\nA\nimages 1\nimage 10 10 2 x\n"
        << "icon 0 0 1 0 1\n";  // promised 2 icons, provided 1
  }
  EXPECT_THROW((void)load_database(path), std::runtime_error);
  std::filesystem::remove(path);
}

// The load-path integrity gap: icon rects that encode to a *different valid*
// BE-string than the recorded metadata implies must fail closed. The `check`
// line carries the CRC of the strings the writer actually encoded; a loader
// that re-encodes something else rejects the file.
TEST(Storage, RejectsIconsThatEncodeToADifferentValidString) {
  // The checksum the writer would have recorded for an icon at [0,1)x[0,1)...
  symbolic_image original(10, 10);
  original.add(0, rect::checked(0, 1, 0, 1));
  char recorded[16];
  std::snprintf(recorded, sizeof(recorded), "%08x",
                strings_checksum(encode(original)));
  // ...stapled to an icon moved to [2,3)x[2,3): still a well-formed encode,
  // just not the one the metadata promises.
  const auto path = temp_file("tampered_icon");
  {
    std::ofstream out(path);
    out << "BESDB 1\nalphabet 1\nA\nimages 1\nimage 10 10 1 x\n"
        << "icon 0 2 3 2 3\ncheck " << recorded << '\n';
  }
  EXPECT_THROW((void)load_database(path), std::runtime_error);
  // Control: the matching checksum loads cleanly.
  symbolic_image moved(10, 10);
  moved.add(0, rect::checked(2, 3, 2, 3));
  std::snprintf(recorded, sizeof(recorded), "%08x",
                strings_checksum(encode(moved)));
  {
    std::ofstream out(path);
    out << "BESDB 1\nalphabet 1\nA\nimages 1\nimage 10 10 1 x\n"
        << "icon 0 2 3 2 3\ncheck " << recorded << '\n';
  }
  EXPECT_EQ(load_database(path).size(), 1u);
  std::filesystem::remove(path);
}

TEST(Storage, RejectsMalformedCheckLine) {
  const auto path = temp_file("badcheck");
  {
    std::ofstream out(path);
    out << "BESDB 1\nalphabet 1\nA\nimages 1\nimage 10 10 1 x\n"
        << "icon 0 2 3 2 3\ncheck nothex!\n";
  }
  EXPECT_THROW((void)load_database(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Storage, LegacyFilesWithoutCheckLinesStillLoad) {
  const auto path = temp_file("legacy");
  {
    std::ofstream out(path);
    out << "BESDB 1\nalphabet 2\nA\nB\nimages 2\nimage 10 10 1 first\n"
        << "icon 0 2 3 2 3\nimage 8 8 1 second\nicon 1 1 4 1 4\n";
  }
  const image_database db = load_database(path);
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.record(0).name, "first");
  EXPECT_EQ(db.record(1).name, "second");
  std::filesystem::remove(path);
}

TEST(Storage, TextSaveRecordsVerifiableChecksums) {
  image_database db;
  rng r(9);
  scene_params params;
  params.object_count = 4;
  for (int i = 0; i < 5; ++i) {
    db.add("img", random_scene(params, r, db.symbols()));
  }
  const auto path = temp_file("checked");
  save_database(db, path);
  // The file carries one check line per image and they all verify on load.
  std::ifstream in(path);
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  std::size_t checks = 0;
  for (std::size_t at = contents.find("check "); at != std::string::npos;
       at = contents.find("check ", at + 1)) {
    ++checks;
  }
  EXPECT_EQ(checks, db.size());
  EXPECT_EQ(load_database(path).size(), db.size());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace bes
