#include "support/test_support.hpp"

#include <algorithm>
#include <map>

#include "geometry/rect.hpp"
#include "util/rng.hpp"

namespace bes::testsupport {

symbolic_image make_scene(std::uint64_t seed, alphabet& names,
                          const scene_opts& opts) {
  rng r(seed);
  scene_params params;
  params.width = opts.domain;
  params.height = opts.domain;
  params.object_count = opts.object_count;
  // Keep MBR extents inside the domain (the generator rejects oversized
  // extents) while preserving the default mix on large domains.
  params.min_extent = std::min(params.min_extent, opts.domain);
  params.max_extent =
      std::clamp(opts.domain / 4, params.min_extent, params.max_extent);
  params.symbol_pool =
      opts.unique_symbols ? opts.object_count : opts.symbol_pool;
  params.unique_symbols = opts.unique_symbols;
  params.disjoint = opts.disjoint;
  params.grid = opts.grid;
  return random_scene(params, r, names);
}

symbolic_image figure1_scene(alphabet& names) {
  symbolic_image img(12, 11);
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  const symbol_id c = names.intern("C");
  img.add(a, rect::checked(2, 6, 3, 9));
  img.add(b, rect::checked(4, 10, 1, 5));
  img.add(c, rect::checked(6, 8, 5, 7));
  return img;
}

namespace {

// Best case of §3.1: one full-domain object, flush boundaries everywhere.
symbolic_image full_domain_scene(alphabet& names) {
  symbolic_image img(10, 10);
  img.add(names.intern("A"), rect::checked(0, 10, 0, 10));
  return img;
}

// Worst case of §3.1 for n=2: strictly nested intervals, gaps at both edges.
symbolic_image nested_scene(alphabet& names) {
  symbolic_image img(10, 10);
  img.add(names.intern("A"), rect::checked(1, 9, 1, 9));
  img.add(names.intern("B"), rect::checked(3, 7, 3, 7));
  return img;
}

// Coincident boundaries across distinct symbols: the no-dummy tie case.
symbolic_image stacked_scene(alphabet& names) {
  symbolic_image img(10, 10);
  img.add(names.intern("A"), rect::checked(2, 8, 2, 8));
  img.add(names.intern("B"), rect::checked(2, 8, 2, 8));
  return img;
}

}  // namespace

const std::vector<golden_fixture>& golden_fixtures() {
  static const std::vector<golden_fixture> fixtures = {
      {"figure1", &figure1_scene, "EAbEBbEAeCbECeEBeE", "EBbEAbEBeCbECeEAeE"},
      {"full_domain", &full_domain_scene, "AbEAe", "AbEAe"},
      {"nested", &nested_scene, "EAbEBbEBeEAeE", "EAbEBbEBeEAeE"},
      {"stacked", &stacked_scene, "EAbBbEAeBeE", "EAbBbEAeBeE"},
  };
  return fixtures;
}

::testing::AssertionResult axis_well_formed(const axis_string& s) {
  const std::vector<token>& toks = s.tokens();
  std::size_t dummies = 0;
  // symbol -> (begins seen, ends seen) over the prefix scanned so far.
  std::map<symbol_id, std::pair<std::size_t, std::size_t>> counts;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].is_dummy()) {
      ++dummies;
      if (i > 0 && toks[i - 1].is_dummy()) {
        return ::testing::AssertionFailure()
               << "adjacent dummies at positions " << (i - 1) << " and " << i;
      }
      continue;
    }
    auto& [begins, ends] = counts[toks[i].symbol()];
    if (toks[i].kind() == boundary_kind::begin) {
      ++begins;
    } else {
      ++ends;
      if (ends > begins) {
        return ::testing::AssertionFailure()
               << "end boundary of symbol " << toks[i].symbol()
               << " precedes its begin at position " << i;
      }
    }
  }
  for (const auto& [symbol, c] : counts) {
    if (c.first != c.second) {
      return ::testing::AssertionFailure()
             << "symbol " << symbol << " has " << c.first << " begins but "
             << c.second << " ends";
    }
  }
  if (dummies != s.dummy_count()) {
    return ::testing::AssertionFailure()
           << "dummy_count() reports " << s.dummy_count() << " but "
           << dummies << " dummies are present";
  }
  if (dummies + s.boundary_count() != s.size()) {
    return ::testing::AssertionFailure()
           << "dummy_count + boundary_count = "
           << (dummies + s.boundary_count()) << " != size " << s.size();
  }
  if (!s.well_formed()) {
    return ::testing::AssertionFailure()
           << "checker found no violation but well_formed() is false";
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult be_string_invariants(const be_string2d& s,
                                                std::size_t object_count) {
  struct axis_case {
    const char* label;
    const axis_string* axis;
  };
  for (const axis_case& c :
       {axis_case{"x", &s.x}, axis_case{"y", &s.y}}) {
    if (auto ok = axis_well_formed(*c.axis); !ok) {
      return ::testing::AssertionFailure()
             << c.label << " axis: " << ok.message();
    }
    if (object_count == 0) {
      if (c.axis->size() != 1 || !c.axis->at(0).is_dummy()) {
        return ::testing::AssertionFailure()
               << c.label << " axis of an empty scene must be the single "
               << "dummy string, got " << c.axis->size() << " tokens";
      }
      continue;
    }
    if (c.axis->boundary_count() != 2 * object_count) {
      return ::testing::AssertionFailure()
             << c.label << " axis has " << c.axis->boundary_count()
             << " boundaries, expected " << 2 * object_count;
    }
    if (c.axis->size() < 2 * object_count ||
        c.axis->size() > 4 * object_count + 1) {
      return ::testing::AssertionFailure()
             << c.label << " axis has " << c.axis->size()
             << " tokens, outside [" << 2 * object_count << ", "
             << 4 * object_count + 1 << "]";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace bes::testsupport
