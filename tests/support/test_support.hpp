// Shared test support: seeded scene builders, golden BE-string fixtures, and
// invariant checkers. Every suite that needs a random or canonical scene
// should come through here so fixtures stay consistent across PRs.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/be_string.hpp"
#include "symbolic/alphabet.hpp"
#include "symbolic/symbolic_image.hpp"
#include "workload/scene_gen.hpp"

namespace bes::testsupport {

// Knobs for the seeded scene builder; defaults give a small mixed scene with
// repeated symbols and a few coincident boundaries.
struct scene_opts {
  std::size_t object_count = 8;
  int domain = 128;
  std::size_t symbol_pool = 6;
  bool unique_symbols = false;
  bool disjoint = false;
  int grid = 0;
};

// A scene that is a pure function of (seed, opts): the canonical way for a
// test to get reproducible random input.
[[nodiscard]] symbolic_image make_scene(std::uint64_t seed, alphabet& names,
                                        const scene_opts& opts = {});

// The paper's Figure 1 / §3.1 worked example.
[[nodiscard]] symbolic_image figure1_scene(alphabet& names);

// A golden fixture pins a scene to the paper-style BE-strings it must encode
// to. `build` interns its symbols into the supplied alphabet.
struct golden_fixture {
  std::string name;
  symbolic_image (*build)(alphabet&);
  std::string paper_x;  // expected paper_style(encode(scene).x)
  std::string paper_y;  // expected paper_style(encode(scene).y)
};

// The canonical golden set (Figure 1 plus the boundary-count extremes).
[[nodiscard]] const std::vector<golden_fixture>& golden_fixtures();

// Invariant checkers. These re-derive the axis-string well-formedness rules
// independently of axis_string::well_formed() and produce a diagnostic
// naming the first violated rule and its position:
//  * no two adjacent dummies,
//  * per-symbol begin/end boundary counts balance,
//  * in every prefix, ends never outnumber begins for any symbol,
//  * dummy_count / boundary_count partition the token count.
[[nodiscard]] ::testing::AssertionResult axis_well_formed(const axis_string& s);

// Axis invariants on both axes plus the paper §3.1 storage bounds for an
// n-object scene: boundary_count == 2n per axis and 2n <= size <= 4n+1
// (a 0-object axis is the single-dummy string).
[[nodiscard]] ::testing::AssertionResult be_string_invariants(
    const be_string2d& s, std::size_t object_count);

}  // namespace bes::testsupport
