// The cost-based planner + access-path + hybrid-index equality suite
// (ISSUE 7): every access path generates the same candidates as the legacy
// function it wraps, the fused hybrid traversal equals the combined
// prefilter set at every pad, the planner is a deterministic pure function
// of (query, database statistics, options), planned searches are
// bit-identical to scoring the chosen candidate set, admissible plans are
// bit-identical to the exhaustive engine, lossy plans stay within a recall
// budget — across kernels, thread counts, and shard counts — and the eval
// gate actually fires when a planner cell degrades.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "db/access_path.hpp"
#include "db/hybrid_index.hpp"
#include "db/planner.hpp"
#include "db/prefilter.hpp"
#include "db/query.hpp"
#include "db/shard.hpp"
#include "db/spatial_index.hpp"
#include "eval/corpus.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"

namespace bes {
namespace {

image_database planner_corpus(std::size_t bases, std::uint64_t seed = 41) {
  image_database db;
  rng r(seed);
  scene_params params;
  params.object_count = 7;
  params.symbol_pool = 9;
  for (std::size_t i = 0; i < bases; ++i) {
    const symbolic_image scene = random_scene(params, r, db.symbols());
    db.add("base" + std::to_string(i), scene);
    distortion_params sibling;
    sibling.keep_fraction = 0.8;
    sibling.jitter = 12;
    db.add("sib" + std::to_string(i), distort(scene, sibling, r, db.symbols()));
  }
  return db;
}

symbolic_image distorted_query(const image_database& db, std::uint64_t seed,
                               double keep = 0.7) {
  rng r(seed * 977 + 5);
  distortion_params d;
  d.keep_fraction = keep;
  d.jitter = 8;
  alphabet scratch = db.symbols();
  return distort(db.record(static_cast<image_id>(seed % db.size())).image, d,
                 r, scratch);
}

// The similarity kernels the equality sweeps cover: the paper's
// query-normalized weighted kernel, the exact-LCS kernel, and the dice norm.
std::vector<similarity_options> kernels() {
  similarity_options weighted;
  similarity_options exact;
  exact.exact_lcs = true;
  similarity_options dice;
  dice.norm = norm_kind::dice;
  return {weighted, exact, dice};
}

// ----------------------------------- access paths == legacy generators

TEST(AccessPath, EachKindMatchesItsLegacyGenerator) {
  const image_database db = planner_corpus(14);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const access_path_context ctx{&db, &spatial, &hybrid};

  std::vector<image_id> everything(db.size());
  std::iota(everything.begin(), everything.end(), 0u);

  for (std::uint64_t seed : {0u, 1u, 2u, 3u}) {
    const symbolic_image query = distorted_query(db, seed);
    const std::vector<symbol_id> symbols = distinct_symbols(query);
    for (int pad : {0, 4, 16, 40}) {
      const path_probe probe{&query, symbols, pad};
      EXPECT_EQ(make_access_path(access_path_kind::full_scan, ctx)
                    ->generate(probe),
                everything);
      EXPECT_EQ(make_access_path(access_path_kind::inverted_index, ctx)
                    ->generate(probe),
                db.candidates(symbols));
      EXPECT_EQ(make_access_path(access_path_kind::rtree_window, ctx)
                    ->generate(probe),
                window_candidates(spatial, query, pad));
      const auto combined =
          combined_candidates(db, spatial, query, pad);
      EXPECT_EQ(make_access_path(access_path_kind::combined, ctx)
                    ->generate(probe),
                combined);
      // The fused traversal: ONE tree walk, same set as index ∩ window.
      EXPECT_EQ(make_access_path(access_path_kind::hybrid, ctx)
                    ->generate(probe),
                combined)
          << "seed=" << seed << " pad=" << pad;
    }
  }
}

TEST(AccessPath, GenerationStatsCountRawHits) {
  const image_database db = planner_corpus(12);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const access_path_context ctx{&db, &spatial, &hybrid};
  const symbolic_image query = distorted_query(db, 2);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  const path_probe probe{&query, symbols, 16};
  for (access_path_kind kind :
       {access_path_kind::full_scan, access_path_kind::inverted_index,
        access_path_kind::rtree_window, access_path_kind::combined,
        access_path_kind::hybrid}) {
    const auto path = make_access_path(kind, ctx);
    access_path_stats stats;
    const auto ids = path->generate(probe, &stats);
    EXPECT_GE(stats.candidates_generated, ids.size()) << to_string(kind);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end())) << to_string(kind);
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
        << to_string(kind) << ": duplicate id";
  }
  // Full scan is exact: generated == emitted.
  access_path_stats full;
  (void)make_access_path(access_path_kind::full_scan, ctx)
      ->generate(probe, &full);
  EXPECT_EQ(full.candidates_generated, db.size());
}

TEST(AccessPath, SpatialKindsRequireAnImageAndTheirStructure) {
  const image_database db = planner_corpus(4);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const symbol_id sym = 0;
  const path_probe no_image{nullptr, std::span<const symbol_id>(&sym, 1), 4};
  {
    const access_path_context ctx{&db, &spatial, &hybrid};
    for (access_path_kind kind :
         {access_path_kind::rtree_window, access_path_kind::combined,
          access_path_kind::hybrid}) {
      EXPECT_THROW((void)make_access_path(kind, ctx)->generate(no_image),
                   std::invalid_argument)
          << to_string(kind);
    }
    // The non-spatial paths never dereference the image.
    EXPECT_NO_THROW(
        (void)make_access_path(access_path_kind::full_scan, ctx)
            ->generate(no_image));
    EXPECT_NO_THROW(
        (void)make_access_path(access_path_kind::inverted_index, ctx)
            ->generate(no_image));
  }
  {
    const access_path_context bare{&db, nullptr, nullptr};
    EXPECT_THROW((void)make_access_path(access_path_kind::rtree_window, bare),
                 std::invalid_argument);
    EXPECT_THROW((void)make_access_path(access_path_kind::combined, bare),
                 std::invalid_argument);
    EXPECT_THROW((void)make_access_path(access_path_kind::hybrid, bare),
                 std::invalid_argument);
  }
}

TEST(AccessPath, KindNamesRoundTrip) {
  for (access_path_kind kind :
       {access_path_kind::full_scan, access_path_kind::inverted_index,
        access_path_kind::rtree_window, access_path_kind::combined,
        access_path_kind::hybrid}) {
    EXPECT_EQ(access_path_kind_from(to_string(kind)), kind);
  }
  EXPECT_THROW((void)access_path_kind_from("btree"), std::invalid_argument);
}

// ------------------------------------------- hybrid index == combined

TEST(HybridIndex, MatchesCombinedPrefilterAcrossPads) {
  const image_database db = planner_corpus(16, 97);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const symbolic_image query = distorted_query(db, seed);
    for (int pad : {0, 2, 8, 24, 64}) {
      hybrid_index::traversal_stats stats;
      EXPECT_EQ(hybrid.candidates(query, pad, &stats),
                combined_candidates(db, spatial, query, pad))
          << "seed=" << seed << " pad=" << pad;
      EXPECT_GT(stats.nodes_visited, 0u);
    }
  }
}

TEST(HybridIndex, IncrementalBuildMatchesSnapshot) {
  const image_database db = planner_corpus(10, 131);
  const hybrid_index snapshot(db);
  hybrid_index incremental(db, deferred_build);
  EXPECT_EQ(incremental.indexed_icons(), 0u);
  for (image_id id = 0; id < db.size(); ++id) {
    incremental.add_image(id);
  }
  EXPECT_EQ(incremental.indexed_icons(), snapshot.indexed_icons());
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const symbolic_image query = distorted_query(db, seed);
    for (int pad : {0, 16}) {
      EXPECT_EQ(incremental.candidates(query, pad),
                snapshot.candidates(query, pad))
          << "seed=" << seed << " pad=" << pad;
    }
  }
}

TEST(HybridIndex, NegativePadThrows) {
  const image_database db = planner_corpus(3);
  const hybrid_index hybrid(db);
  EXPECT_THROW((void)hybrid.candidates(distorted_query(db, 0), -1),
               std::invalid_argument);
}

// ------------------------------------------------------------ the planner

TEST(Planner, DeterministicForGivenInputs) {
  const image_database db = planner_corpus(15);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const planner_context ctx{&db, &spatial, &hybrid};
  // Freshly built structures over the same records must plan identically —
  // the plan depends on statistics, not on object identity.
  const spatial_index spatial2(db);
  const hybrid_index hybrid2(db);
  const planner_context ctx2{&db, &spatial2, &hybrid2};
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const symbolic_image query = distorted_query(db, seed);
    const std::vector<symbol_id> symbols = distinct_symbols(query);
    for (std::size_t k : {0u, 5u}) {
      query_options options;
      options.top_k = k;
      const access_plan first = plan_query(ctx, query, symbols, options);
      EXPECT_EQ(first, plan_query(ctx, query, symbols, options));
      EXPECT_EQ(first, plan_query(ctx2, query, symbols, options));
    }
  }
}

TEST(Planner, AdmissibleOnlyWithoutAThresholdOrUnderTransforms) {
  const image_database db = planner_corpus(15);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const planner_context ctx{&db, &spatial, &hybrid};
  const symbolic_image query = distorted_query(db, 1);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  {
    query_options options;
    options.use_index = false;
    EXPECT_EQ(plan_query(ctx, query, symbols, options).path,
              access_path_kind::full_scan);
  }
  {
    // No top-k cap and no score floor: the caller wants every score, which
    // only the admissible paths deliver.
    query_options options;
    options.top_k = 0;
    options.min_score = 0.0;
    const access_plan plan = plan_query(ctx, query, symbols, options);
    EXPECT_TRUE(plan.path == access_path_kind::full_scan ||
                plan.path == access_path_kind::inverted_index)
        << to_string(plan.path);
  }
  {
    // Transform-invariant queries: identity-layout windows are wrong for
    // the other 7 dihedral variants.
    query_options options;
    options.top_k = 5;
    options.transform_invariant = true;
    const access_plan plan = plan_query(ctx, query, symbols, options);
    EXPECT_TRUE(plan.path == access_path_kind::full_scan ||
                plan.path == access_path_kind::inverted_index)
        << to_string(plan.path);
  }
}

TEST(Planner, AdaptivePadHasAFloorAndGrowsWithTheDomain) {
  symbolic_image tiny(8, 8);
  tiny.add(0, rect::checked(1, 2, 1, 2));
  EXPECT_GE(adaptive_pad(tiny), 2);
  symbolic_image small(64, 64);
  small.add(0, rect::checked(10, 14, 10, 14));
  symbolic_image large(512, 512);
  large.add(0, rect::checked(80, 112, 80, 112));
  EXPECT_LT(adaptive_pad(small), adaptive_pad(large));
  // Pure function of the query.
  EXPECT_EQ(adaptive_pad(large), adaptive_pad(large));
}

// ----------------------------------------------------- planned searches

TEST(PlannedSearch, BitIdenticalToScoringTheChosenSet) {
  const image_database db = planner_corpus(18);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const planner_context ctx{&db, &spatial, &hybrid};
  const access_path_context actx{&db, &spatial, &hybrid};
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const symbolic_image query = distorted_query(db, seed);
    const std::vector<symbol_id> symbols = distinct_symbols(query);
    const be_string2d strings = encode(query);
    for (const similarity_options& sim : kernels()) {
      query_options options;
      options.top_k = 5;
      options.similarity = sim;
      const access_plan plan = plan_query(ctx, query, symbols, options);
      const auto ids = make_access_path(plan.path, actx)
                           ->generate(path_probe{&query, symbols, plan.pad});
      EXPECT_EQ(search_planned(ctx, query, options),
                search_candidates(db, strings, ids, options))
          << "seed=" << seed << " path=" << to_string(plan.path);
    }
  }
}

TEST(PlannedSearch, FullScanPlanEqualsTheExhaustiveEngine) {
  const image_database db = planner_corpus(12);
  const planner_context ctx{&db, nullptr, nullptr};
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const symbolic_image query = distorted_query(db, seed);
    query_options options;
    options.top_k = 8;
    options.use_index = false;
    search_stats stats;
    EXPECT_EQ(search_planned(ctx, query, options, &stats),
              search(db, query, options))
        << "seed=" << seed;
    ASSERT_EQ(stats.plans.size(), 1u);
    EXPECT_EQ(stats.plans[0].path, access_path_kind::full_scan);
    EXPECT_EQ(stats.plans[0].actual_candidates, db.size());
  }
}

TEST(PlannedSearch, RecordsThePlanAndGenerationAccounting) {
  const image_database db = planner_corpus(15);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const planner_context ctx{&db, &spatial, &hybrid};
  const symbolic_image query = distorted_query(db, 3);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  query_options options;
  options.top_k = 5;
  options.histogram_pruning = true;
  search_stats stats;
  (void)search_planned(ctx, query, options, &stats);
  ASSERT_EQ(stats.plans.size(), 1u);
  const planned_scan& plan = stats.plans[0];
  EXPECT_EQ(plan, (planned_scan{
                      plan_query(ctx, query, symbols, options).path,
                      plan_query(ctx, query, symbols, options).pad,
                      plan_query(ctx, query, symbols, options)
                          .estimated_candidates,
                      plan.actual_candidates}));
  EXPECT_EQ(stats.scanned, plan.actual_candidates);
  EXPECT_GE(stats.candidates_generated, stats.scanned);
  EXPECT_EQ(stats.scored + stats.pruned, stats.scanned);
}

TEST(PlannedSearch, ThreadInvariantAcrossKernels) {
  const image_database db = planner_corpus(20);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const planner_context ctx{&db, &spatial, &hybrid};
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const symbolic_image query = distorted_query(db, seed);
    for (const similarity_options& sim : kernels()) {
      query_options serial;
      serial.top_k = 5;
      serial.similarity = sim;
      serial.histogram_pruning = true;
      const auto reference = search_planned(ctx, query, serial);
      query_options threaded = serial;
      threaded.threads = 4;
      EXPECT_EQ(search_planned(ctx, query, threaded), reference)
          << "seed=" << seed;
    }
  }
}

TEST(PlannedSearch, BatchMatchesPerQuery) {
  const image_database db = planner_corpus(15);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const planner_context ctx{&db, &spatial, &hybrid};
  std::vector<symbolic_image> queries;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    queries.push_back(distorted_query(db, seed));
  }
  for (unsigned threads : {1u, 4u}) {
    query_options options;
    options.top_k = 5;
    options.threads = threads;
    std::vector<search_stats> batch_stats;
    const auto batched =
        search_batch_planned(ctx, queries, options, &batch_stats);
    ASSERT_EQ(batched.size(), queries.size());
    ASSERT_EQ(batch_stats.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      search_stats single;
      EXPECT_EQ(batched[i], search_planned(ctx, queries[i], options, &single))
          << "query " << i << " threads=" << threads;
      EXPECT_EQ(batch_stats[i].plans, single.plans) << "query " << i;
      EXPECT_EQ(batch_stats[i].candidates_generated,
                single.candidates_generated)
          << "query " << i;
    }
  }
}

// -------------------------------------------------------- sharded planning

TEST(ShardedPlanner, FullScanPlansMatchTheUnshardedEngine) {
  // use_index off pins every shard's plan to full_scan — the admissible
  // reference — so the sharded planned search must reproduce the unsharded
  // exhaustive engine bit for bit, at every shard count.
  const image_database db = planner_corpus(18);
  for (std::size_t shards : {1u, 3u, 8u}) {
    const sharded_database sharded = make_sharded(db, shards);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const symbolic_image query = distorted_query(db, seed);
      query_options options;
      options.top_k = 0;
      options.use_index = false;
      search_stats stats;
      EXPECT_EQ(search_planned(sharded, query, options, &stats),
                search(db, query, options))
          << "shards=" << shards << " seed=" << seed;
      EXPECT_EQ(stats.plans.size(), shards);
      for (const planned_scan& plan : stats.plans) {
        EXPECT_EQ(plan.path, access_path_kind::full_scan);
      }
    }
  }
}

TEST(ShardedPlanner, OneShardPlansExactlyLikeTheFlatPlanner) {
  // A single shard holds the whole corpus, so its statistics — and
  // therefore its plan and its results — must coincide with the flat
  // planner's for any options. (Across MANY shards the per-shard plans may
  // legitimately differ from the flat one: that split is what the
  // per-(query, shard) planning exists for.)
  const image_database db = planner_corpus(18);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const planner_context ctx{&db, &spatial, &hybrid};
  const sharded_database sharded = make_sharded(db, 1);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const symbolic_image query = distorted_query(db, seed);
    for (std::size_t k : {0u, 5u}) {
      query_options options;
      options.top_k = k;
      search_stats sharded_stats;
      search_stats flat_stats;
      EXPECT_EQ(search_planned(sharded, query, options, &sharded_stats),
                search_planned(ctx, query, options, &flat_stats))
          << "seed=" << seed << " k=" << k;
      ASSERT_EQ(sharded_stats.plans.size(), 1u);
      ASSERT_EQ(flat_stats.plans.size(), 1u);
      EXPECT_EQ(sharded_stats.plans[0], flat_stats.plans[0]);
    }
  }
}

TEST(ShardedPlanner, DeterministicAndThreadInvariant) {
  const image_database db = planner_corpus(20);
  for (std::size_t shards : {1u, 3u, 8u}) {
    const sharded_database sharded = make_sharded(db, shards);
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const symbolic_image query = distorted_query(db, seed);
      query_options serial;
      serial.top_k = 5;
      serial.histogram_pruning = true;
      search_stats first_stats;
      const auto reference = search_planned(sharded, query, serial,
                                            &first_stats);
      EXPECT_EQ(first_stats.plans.size(), shards);
      // Re-running and re-threading must not change results or plans.
      search_stats again_stats;
      EXPECT_EQ(search_planned(sharded, query, serial, &again_stats),
                reference);
      EXPECT_EQ(again_stats.plans, first_stats.plans);
      query_options threaded = serial;
      threaded.threads = 4;
      EXPECT_EQ(search_planned(sharded, query, threaded), reference)
          << "shards=" << shards << " seed=" << seed;
    }
  }
}

TEST(ShardedPlanner, BatchMatchesPerQuery) {
  const image_database db = planner_corpus(15);
  const sharded_database sharded = make_sharded(db, 3);
  std::vector<symbolic_image> queries;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    queries.push_back(distorted_query(db, seed));
  }
  query_options options;
  options.top_k = 5;
  options.threads = 3;
  std::vector<search_stats> batch_stats;
  const auto batched =
      search_batch_planned(sharded, queries, options, &batch_stats);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    search_stats single;
    EXPECT_EQ(batched[i], search_planned(sharded, queries[i], options, &single))
        << "query " << i;
    EXPECT_EQ(batch_stats[i].plans, single.plans) << "query " << i;
  }
}

TEST(ShardedPlanner, RecallWithinBudgetAcrossKernelsAndShards) {
  // The lossy half of the contract: whatever paths the planner picks, the
  // per-query top-k must keep recall-vs-exhaustive above the documented
  // budget for every kernel and shard count. The corpus jitter (8) is far
  // below the adaptive pad, so losses can come only from positive-scoring
  // images whose shared-symbol icons sit outside every query window — the
  // documented, bounded prefilter loss.
  const image_database db = planner_corpus(20, 173);
  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const planner_context ctx{&db, &spatial, &hybrid};
  // Deterministic for the fixed seeds; measured ~0.77-0.9 per kernel on
  // this corpus (whose 9-symbol pool makes cross-scene symbol collisions —
  // the documented prefilter loss — far more common than the eval corpus).
  constexpr double kRecallFloor = 0.7;
  constexpr std::size_t kQueries = 6;
  for (const similarity_options& sim : kernels()) {
    query_options exhaustive;
    exhaustive.top_k = 10;
    exhaustive.similarity = sim;
    exhaustive.use_index = false;
    query_options planned = exhaustive;
    planned.use_index = true;
    double flat_recall = 0.0;
    std::vector<double> sharded_recall{0.0, 0.0, 0.0};
    const std::size_t shard_counts[] = {1, 3, 8};
    for (std::uint64_t seed = 0; seed < kQueries; ++seed) {
      const symbolic_image query = distorted_query(db, seed);
      const auto reference = search(db, query, exhaustive);
      ASSERT_FALSE(reference.empty());
      const auto overlap = [&](const std::vector<query_result>& got) {
        std::size_t hits = 0;
        for (const query_result& want : reference) {
          for (const query_result& have : got) {
            if (have.id == want.id) {
              ++hits;
              break;
            }
          }
        }
        return static_cast<double>(hits) /
               static_cast<double>(reference.size());
      };
      flat_recall += overlap(search_planned(ctx, query, planned));
      for (std::size_t s = 0; s < 3; ++s) {
        const sharded_database sharded = make_sharded(db, shard_counts[s]);
        sharded_recall[s] += overlap(search_planned(sharded, query, planned));
      }
    }
    EXPECT_GE(flat_recall / kQueries, kRecallFloor)
        << "norm=" << static_cast<int>(sim.norm)
        << " exact=" << sim.exact_lcs;
    for (std::size_t s = 0; s < 3; ++s) {
      EXPECT_GE(sharded_recall[s] / kQueries, kRecallFloor)
          << "shards=" << shard_counts[s];
    }
  }
}

// ------------------------------------------------ the eval gate, negraded

TEST(PlannerGate, EvalGateFiresOnADegradedPlannerCell) {
  // End-to-end negative control: run a small eval matrix containing a
  // planner cell, freeze it as a baseline, then degrade the planner cell's
  // recall past its budget — the gate must fail NAMING that cell.
  eval_corpus_params params;
  params.base_scenes = 6;
  params.queries_per_base = 1;
  const eval_corpus corpus = build_eval_corpus(params, 2);
  std::vector<eval_cell_config> matrix;
  {
    eval_cell_config cell;  // the recall reference
    matrix.push_back(cell);
    cell.path = scan_path::planner;
    matrix.push_back(cell);
  }
  const eval_report report = run_eval(corpus, matrix);
  const baseline_policy policy;
  const json_value baseline = make_baseline(report, policy);
  ASSERT_TRUE(check_against_baseline(report, baseline).pass);

  eval_report degraded = report;
  std::string victim;
  for (eval_cell_result& cell : degraded.cells) {
    if (cell.config.path == scan_path::planner) {
      cell.metrics.recall_vs_exhaustive -=
          policy.prefilter_headroom + policy.tolerance + 0.05;
      victim = cell.config.name();
    }
  }
  ASSERT_FALSE(victim.empty());
  const gate_result gate = check_against_baseline(degraded, baseline);
  EXPECT_FALSE(gate.pass);
  bool named = false;
  for (const std::string& failure : gate.failures) {
    if (failure.find(victim) != std::string::npos) named = true;
  }
  EXPECT_TRUE(named) << "no failure named the degraded planner cell "
                     << victim;
}

}  // namespace
}  // namespace bes
