#include <gtest/gtest.h>

#include <vector>

#include "baselines/relation_class.hpp"

namespace bes {
namespace {

std::vector<interval> small_intervals(int limit) {
  std::vector<interval> out;
  for (int lo = 0; lo < limit; ++lo) {
    for (int hi = lo + 1; hi <= limit; ++hi) out.push_back(interval{lo, hi});
  }
  return out;
}

TEST(RelationClass, Type1Mapping) {
  EXPECT_EQ(type1_of(allen_relation::before), type1_class::disjoint_lt);
  EXPECT_EQ(type1_of(allen_relation::after), type1_class::disjoint_gt);
  EXPECT_EQ(type1_of(allen_relation::meets), type1_class::edge_lt);
  EXPECT_EQ(type1_of(allen_relation::met_by), type1_class::edge_gt);
  EXPECT_EQ(type1_of(allen_relation::overlaps), type1_class::partial_lt);
  EXPECT_EQ(type1_of(allen_relation::overlapped_by), type1_class::partial_gt);
  EXPECT_EQ(type1_of(allen_relation::contains), type1_class::contains);
  EXPECT_EQ(type1_of(allen_relation::started_by), type1_class::contains);
  EXPECT_EQ(type1_of(allen_relation::finished_by), type1_class::contains);
  EXPECT_EQ(type1_of(allen_relation::during), type1_class::inside);
  EXPECT_EQ(type1_of(allen_relation::starts), type1_class::inside);
  EXPECT_EQ(type1_of(allen_relation::finishes), type1_class::inside);
  EXPECT_EQ(type1_of(allen_relation::equals), type1_class::equal);
}

TEST(RelationClass, Type0Mapping) {
  EXPECT_EQ(type0_of(allen_relation::before), type0_class::apart);
  EXPECT_EQ(type0_of(allen_relation::meets), type0_class::apart);
  EXPECT_EQ(type0_of(allen_relation::after), type0_class::apart);
  EXPECT_EQ(type0_of(allen_relation::overlaps), type0_class::intersect);
  EXPECT_EQ(type0_of(allen_relation::overlapped_by), type0_class::intersect);
  EXPECT_EQ(type0_of(allen_relation::during), type0_class::nested);
  EXPECT_EQ(type0_of(allen_relation::contains), type0_class::nested);
  EXPECT_EQ(type0_of(allen_relation::starts), type0_class::nested);
  EXPECT_EQ(type0_of(allen_relation::equals), type0_class::same);
}

TEST(RelationClass, Type0FactorsThroughType1) {
  // The coarse class must be a function of the type-1 class, which is what
  // makes type-1 agreement imply type-0 agreement.
  for (int i = 0; i < allen_relation_count; ++i) {
    for (int j = 0; j < allen_relation_count; ++j) {
      const auto a = static_cast<allen_relation>(i);
      const auto b = static_cast<allen_relation>(j);
      if (type1_of(a) == type1_of(b)) {
        EXPECT_EQ(type0_of(a), type0_of(b))
            << to_string(a) << " vs " << to_string(b);
      }
    }
  }
}

TEST(RelationClass, StrictnessNestingExhaustive) {
  // type-2 compatible => type-1 compatible => type-0 compatible, over all
  // 13^2 x 13^2 relation pairs.
  for (int ax = 0; ax < allen_relation_count; ++ax) {
    for (int ay = 0; ay < allen_relation_count; ++ay) {
      const pair_relation a{static_cast<allen_relation>(ax),
                            static_cast<allen_relation>(ay)};
      for (int bx = 0; bx < allen_relation_count; ++bx) {
        for (int by = 0; by < allen_relation_count; ++by) {
          const pair_relation b{static_cast<allen_relation>(bx),
                                static_cast<allen_relation>(by)};
          if (compatible(similarity_type::type2, a, b)) {
            EXPECT_TRUE(compatible(similarity_type::type1, a, b));
          }
          if (compatible(similarity_type::type1, a, b)) {
            EXPECT_TRUE(compatible(similarity_type::type0, a, b));
          }
        }
      }
    }
  }
}

TEST(RelationClass, CompatibilityIsReflexiveAndSymmetric) {
  const auto intervals = small_intervals(5);
  const rect r1{intervals[0], intervals[3]};
  const rect r2{intervals[5], intervals[8]};
  const pair_relation p = relate(r1, r2);
  for (similarity_type level :
       {similarity_type::type0, similarity_type::type1,
        similarity_type::type2}) {
    EXPECT_TRUE(compatible(level, p, p));
  }
}

TEST(RelationClass, RelateUsesBothAxes) {
  const rect a = rect::checked(0, 2, 0, 2);
  const rect b = rect::checked(5, 7, 0, 2);
  const pair_relation p = relate(a, b);
  EXPECT_EQ(p.x, allen_relation::before);
  EXPECT_EQ(p.y, allen_relation::equals);
}

TEST(RelationClass, NamesAreStable) {
  EXPECT_EQ(to_string(type1_class::partial_lt), "partial<");
  EXPECT_EQ(to_string(type0_class::nested), "nested");
  EXPECT_EQ(to_string(similarity_type::type2), "type-2");
}

TEST(RelationClass, DirectionalityMatters) {
  // before vs after are type-1 DIFFERENT but type-0 SAME (direction-free).
  const pair_relation ab{allen_relation::before, allen_relation::equals};
  const pair_relation ba{allen_relation::after, allen_relation::equals};
  EXPECT_FALSE(compatible(similarity_type::type1, ab, ba));
  EXPECT_TRUE(compatible(similarity_type::type0, ab, ba));
}

}  // namespace
}  // namespace bes
