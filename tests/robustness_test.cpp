// Robustness: every text-format reader (BE-string parser, scene sketches,
// the query language, the database loader) must either succeed or throw a
// std::exception on arbitrarily mutated input — never crash, hang, or
// return a structurally invalid object.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/serializer.hpp"
#include "db/storage.hpp"
#include "reasoning/query_lang.hpp"
#include "symbolic/scene_text.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

std::string mutate(std::string text, rng& r, int edits) {
  static constexpr char pool[] =
      "abcXYZ0123456789 :;,()&-.\nEb\t";
  for (int e = 0; e < edits && !text.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        r.uniform_int(0, static_cast<int>(text.size()) - 1));
    switch (r.uniform_int(0, 2)) {
      case 0:  // replace
        text[pos] = pool[static_cast<std::size_t>(
            r.uniform_int(0, sizeof(pool) - 2))];
        break;
      case 1:  // delete
        text.erase(pos, 1);
        break;
      default:  // duplicate a chunk
        text.insert(pos, text.substr(pos, 3));
        break;
    }
  }
  return text;
}

class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRobustness, AxisParserNeverCrashes) {
  rng r(GetParam());
  alphabet names;
  symbolic_image scene(32, 32);
  scene.add(names.intern("A"), rect::checked(1, 9, 2, 8));
  scene.add(names.intern("B"), rect::checked(4, 20, 6, 30));
  const std::string valid = to_text(encode(scene), names);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string garbled = mutate(valid, r, r.uniform_int(1, 10));
    try {
      alphabet scratch = names;
      (void)parse_be_string(garbled, scratch);
    } catch (const std::exception&) {
      // throwing is acceptable; crashing is not
    }
  }
}

TEST_P(ParserRobustness, SceneSketchParserNeverCrashes) {
  rng r(GetParam() + 100);
  const std::string valid = "32x32: A 1 9 2 8; B 4 20 6 30";
  for (int trial = 0; trial < 50; ++trial) {
    const std::string garbled = mutate(valid, r, r.uniform_int(1, 10));
    try {
      alphabet scratch;
      (void)parse_scene(garbled, scratch);
    } catch (const std::exception&) {
    }
  }
}

TEST_P(ParserRobustness, QueryLanguageParserNeverCrashes) {
  rng r(GetParam() + 200);
  const std::string valid = "A left-of B & C above A and B inside C";
  for (int trial = 0; trial < 50; ++trial) {
    const std::string garbled = mutate(valid, r, r.uniform_int(1, 8));
    try {
      (void)parse_query(garbled);
    } catch (const std::exception&) {
    }
  }
}

TEST_P(ParserRobustness, DatabaseLoaderNeverCrashesAndLoadsOnlyValidDbs) {
  rng r(GetParam() + 300);
  image_database db;
  scene_params params;
  params.object_count = 4;
  params.width = 64;
  params.height = 64;
  params.max_extent = 16;
  for (int i = 0; i < 3; ++i) {
    db.add("img" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  const auto path = std::filesystem::temp_directory_path() /
                    ("bestring_robust_" + std::to_string(GetParam()));
  save_database(db, path);
  std::string valid;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    valid = buffer.str();
  }
  for (int trial = 0; trial < 25; ++trial) {
    {
      std::ofstream out(path);
      out << mutate(valid, r, r.uniform_int(1, 12));
    }
    try {
      const image_database loaded = load_database(path);
      // If it loads, it must be structurally sound.
      for (const db_record& rec : loaded.records()) {
        EXPECT_TRUE(rec.strings.well_formed());
        EXPECT_EQ(rec.strings, encode(rec.image));
      }
    } catch (const std::exception&) {
    }
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Range<std::uint64_t>(0, 8));

// Unmutated baselines stay parseable (the fuzz above would be vacuous if
// the valid inputs themselves failed).
TEST(ParserRobustness, ValidInputsParse) {
  alphabet names;
  symbolic_image scene(32, 32);
  scene.add(names.intern("A"), rect::checked(1, 9, 2, 8));
  const be_string2d s = encode(scene);
  alphabet scratch = names;
  EXPECT_EQ(parse_be_string(to_text(s, names), scratch), s);
  alphabet scratch2;
  EXPECT_EQ(parse_scene("32x32: A 1 9 2 8", scratch2).size(), 1u);
  EXPECT_EQ(parse_query("A left-of B").clauses.size(), 1u);
}

}  // namespace
}  // namespace bes
