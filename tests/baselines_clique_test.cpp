#include <gtest/gtest.h>

#include <random>

#include "baselines/clique.hpp"

namespace bes {
namespace {

// Exponential oracle: try every vertex subset.
std::size_t brute_force_max_clique(const undirected_graph& g) {
  const std::size_t n = g.size();
  std::size_t best = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<std::size_t> members;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask & (std::size_t{1} << v)) members.push_back(v);
    }
    bool clique = true;
    for (std::size_t i = 0; i < members.size() && clique; ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (!g.adjacent(members[i], members[j])) {
          clique = false;
          break;
        }
      }
    }
    if (clique) best = std::max(best, members.size());
  }
  return best;
}

bool is_clique(const undirected_graph& g, const std::vector<std::size_t>& vs) {
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      if (!g.adjacent(vs[i], vs[j])) return false;
    }
  }
  return true;
}

TEST(Graph, EdgesAreSymmetric) {
  undirected_graph g(4);
  g.add_edge(0, 3);
  EXPECT_TRUE(g.adjacent(0, 3));
  EXPECT_TRUE(g.adjacent(3, 0));
  EXPECT_FALSE(g.adjacent(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, RejectsSelfLoopAndOutOfRange) {
  undirected_graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
}

TEST(Clique, EmptyGraph) {
  undirected_graph g(0);
  EXPECT_TRUE(max_clique_exact(g).empty());
}

TEST(Clique, IsolatedVerticesGiveSingleton) {
  undirected_graph g(5);
  EXPECT_EQ(max_clique_exact(g).size(), 1u);
}

TEST(Clique, TriangleInPath) {
  undirected_graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // triangle {0,1,2}
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto clique = max_clique_exact(g);
  EXPECT_EQ(clique, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Clique, CompleteGraph) {
  const std::size_t n = 8;
  undirected_graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  EXPECT_EQ(max_clique_exact(g).size(), n);
}

TEST(Clique, BipartiteGraphHasSizeTwo) {
  undirected_graph g(6);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 3; b < 6; ++b) g.add_edge(a, b);
  }
  EXPECT_EQ(max_clique_exact(g).size(), 2u);
}

TEST(Clique, WordBoundarySizes) {
  // Exercise graphs straddling the 64-bit word boundary.
  for (std::size_t n : {63u, 64u, 65u, 70u}) {
    undirected_graph g(n);
    // A clique on the last 5 vertices.
    for (std::size_t i = n - 5; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
    }
    EXPECT_EQ(max_clique_exact(g).size(), 5u) << n;
  }
}

class CliqueRandom : public ::testing::TestWithParam<int> {};

TEST_P(CliqueRandom, ExactMatchesBruteForce) {
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> size(1, 12);
  std::bernoulli_distribution edge(0.4);
  const std::size_t n = static_cast<std::size_t>(size(gen));
  undirected_graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (edge(gen)) g.add_edge(i, j);
    }
  }
  const auto exact = max_clique_exact(g);
  EXPECT_TRUE(is_clique(g, exact));
  EXPECT_EQ(exact.size(), brute_force_max_clique(g));
  // Greedy is a valid clique and never beats exact.
  const auto greedy = max_clique_greedy(g);
  EXPECT_TRUE(is_clique(g, greedy));
  EXPECT_LE(greedy.size(), exact.size());
  EXPECT_GE(greedy.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliqueRandom, ::testing::Range(0, 50));

}  // namespace
}  // namespace bes
