#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace bes {
namespace {

// ---------------------------------------------------------------- rng

TEST(Rng, UniformIntStaysInRange) {
  rng r(42);
  for (int i = 0; i < 1000; ++i) {
    const int v = r.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  rng r(1);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  rng r(1);
  EXPECT_THROW((void)r.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, SameSeedSameStream) {
  rng a(7);
  rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(7);
  rng b(8);
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) differs = a.next_u64() != b.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Rng, ChanceEdgeCases) {
  rng r(3);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, Uniform01InRange) {
  rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SampleIndicesDistinctSortedBounded) {
  rng r(11);
  const auto sample = r.sample_indices(20, 8);
  ASSERT_EQ(sample.size(), 8u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  for (std::size_t v : sample) EXPECT_LT(v, 20u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  rng r(1);
  EXPECT_THROW((void)r.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, PickRejectsEmpty) {
  rng r(1);
  std::vector<int> empty;
  EXPECT_THROW((void)r.pick(std::span<const int>(empty)), std::invalid_argument);
}

// ---------------------------------------------------------------- parallel

TEST(Parallel, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(n, 4, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(Parallel, SingleThreadRunsInline) {
  std::vector<int> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, 8, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, ConcurrentThrowsResolveToLowestIndexDeterministically) {
  // Regression: with several workers throwing at the same time, "first
  // exception wins" used to mean first-to-grab-the-mutex — a scheduling
  // coin flip, so the same failing scan reported different errors run to
  // run. The contract is now deterministic: the exception from the LOWEST
  // index wins. Both workers rendezvous on a spin barrier so both are
  // genuinely in flight, then throw together; index 0's message must come
  // out every single time.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> arrived{0};
    std::string caught;
    try {
      parallel_for(
          2, 2,
          [&](std::size_t i) {
            arrived.fetch_add(1);
            // Worker 0 is parked here until worker 1 claims index 1 (and
            // vice versa), so neither throw can win by starting early. The
            // barrier always completes: the only thread able to claim the
            // other index is the other worker, which is not blocked.
            while (arrived.load() < 2) std::this_thread::yield();
            throw std::runtime_error(std::to_string(i));
          },
          /*chunk=*/1);
      FAIL() << "round " << round << ": nothing propagated";
    } catch (const std::runtime_error& error) {
      caught = error.what();
    }
    ASSERT_EQ(caught, "0") << "round " << round
                           << ": a higher index's exception won the race";
  }
}

TEST(Parallel, ExceptionAbortsRemainingWork) {
  // Regression: only the THROWING worker used to stop; its siblings kept
  // draining the cursor and ran fn on every remaining index, so a scan that
  // failed on item 1 still paid for the other 99999. After the first throw,
  // at most a bounded handful of calls may still start (in-flight chunks
  // finish their current item; each worker checks the flag per index).
  constexpr std::size_t n = 100000;
  constexpr unsigned threads = 4;
  std::atomic<std::size_t> after_throw{0};
  std::atomic<bool> thrown{false};
  EXPECT_THROW(
      parallel_for(
          n, threads,
          [&](std::size_t i) {
            if (thrown.load()) after_throw.fetch_add(1);
            if (i == 0) {
              thrown.store(true);
              throw std::runtime_error("boom");
            }
            // Let the siblings hit the cursor a few times while the throw
            // happens, without slowing the suite down.
            std::this_thread::yield();
          },
          /*chunk=*/1),
      std::runtime_error);
  EXPECT_TRUE(thrown.load());
  // Bounded by one in-flight item per worker plus the per-index flag check
  // racing the store; far below the ~n calls the bug allowed. Generous
  // factor to keep the test deterministic on slow machines.
  EXPECT_LT(after_throw.load(), static_cast<std::size_t>(threads) * 64);
}

TEST(Parallel, EveryChunkSizeVisitsEveryIndexExactlyOnce) {
  // The chunk parameter only changes scheduling, never coverage: chunk 1
  // (the batch/fan-out work queues), the default 16, a chunk bigger than
  // the whole range, and a degenerate 0 (coerced to 1) all visit each
  // index once.
  constexpr std::size_t n = 503;  // prime: never divides evenly
  for (std::size_t chunk : {0u, 1u, 3u, 16u, 1000u}) {
    std::vector<std::atomic<int>> visits(n);
    parallel_for(
        n, 4, [&](std::size_t i) { visits[i].fetch_add(1); }, chunk);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "chunk=" << chunk << " i=" << i;
    }
  }
}

TEST(Parallel, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1u);
}

// ---------------------------------------------------------------- args

TEST(Args, ParsesAllKinds) {
  arg_parser p("test");
  p.add_string("name", "default", "a string");
  p.add_int("count", 3, "an int");
  p.add_double("ratio", 0.5, "a double");
  p.add_bool("verbose", false, "a bool");
  const char* argv[] = {"prog",    "--name",  "hello", "--count=7",
                        "--ratio", "0.25",    "--verbose"};
  ASSERT_TRUE(p.parse(7, argv));
  EXPECT_EQ(p.get_string("name"), "hello");
  EXPECT_EQ(p.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.25);
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(Args, DefaultsSurviveEmptyArgv) {
  arg_parser p("test");
  p.add_int("count", 3, "an int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("count"), 3);
}

TEST(Args, HelpReturnsFalse) {
  arg_parser p("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Args, UnknownFlagThrows) {
  arg_parser p("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW((void)p.parse(3, argv), std::invalid_argument);
}

TEST(Args, MalformedIntThrows) {
  arg_parser p("test");
  p.add_int("count", 3, "an int");
  const char* argv[] = {"prog", "--count", "seven"};
  EXPECT_THROW((void)p.parse(3, argv), std::invalid_argument);
}

TEST(Args, PositionalCollected) {
  arg_parser p("test");
  const char* argv[] = {"prog", "a.pgm", "b.pgm"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"a.pgm", "b.pgm"}));
}

TEST(Args, TypeMismatchThrows) {
  arg_parser p("test");
  p.add_int("count", 3, "an int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW((void)p.get_string("count"), std::invalid_argument);
}

// ---------------------------------------------------------------- table

TEST(Table, AlignsColumns) {
  text_table t({"n", "value"});
  t.add_row({"1", "short"});
  t.add_row({"100", "longer-cell"});
  const std::string out = t.str();
  EXPECT_NE(out.find("n    value"), std::string::npos);
  EXPECT_NE(out.find("100  longer-cell"), std::string::npos);
}

TEST(Table, RejectsRowWidthMismatch) {
  text_table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(text_table({}), std::invalid_argument);
}

TEST(Table, FmtDoubleDigits) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

}  // namespace
}  // namespace bes
