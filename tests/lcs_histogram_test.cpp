#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "db/query.hpp"
#include "lcs/be_lcs.hpp"
#include "lcs/token_histogram.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"

namespace bes {
namespace {

token Bb(symbol_id s) { return token::boundary(s, boundary_kind::begin); }
token Be(symbol_id s) { return token::boundary(s, boundary_kind::end); }

std::vector<token> random_tokens(rng& r, std::size_t max_len) {
  std::vector<token> out(
      static_cast<std::size_t>(r.uniform_int(0, static_cast<int>(max_len))));
  for (token& t : out) {
    const int pick = r.uniform_int(0, 4);
    if (pick == 0) {
      t = token::dummy();
    } else {
      const auto s = static_cast<symbol_id>(r.uniform_int(0, 2));
      t = pick % 2 == 1 ? Bb(s) : Be(s);
    }
  }
  return out;
}

// ---------------------------------------------------------- histogram

TEST(TokenHistogram, CountsAndTotals) {
  const std::vector<token> tokens = {token::dummy(), Bb(1), token::dummy(),
                                     Bb(1), Be(1)};
  const token_histogram h{std::span<const token>(tokens)};
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.distinct(), 3u);  // E, 1:b, 1:e
}

TEST(TokenHistogram, EmptyInput) {
  const token_histogram h{std::span<const token>{}};
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.distinct(), 0u);
  EXPECT_EQ(token_histogram::intersection_size(h, h), 0u);
}

TEST(TokenHistogram, IntersectionKnownValues) {
  const std::vector<token> a = {token::dummy(), token::dummy(), Bb(0), Be(0)};
  const std::vector<token> b = {token::dummy(), Bb(0), Bb(0), Bb(1)};
  const token_histogram ha{std::span<const token>(a)};
  const token_histogram hb{std::span<const token>(b)};
  // min(2,1) dummies + min(1,2) 0:b = 2.
  EXPECT_EQ(token_histogram::intersection_size(ha, hb), 2u);
  EXPECT_EQ(token_histogram::intersection_size(hb, ha), 2u);
}

class HistogramBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramBound, IntersectionBoundsConstrainedLcs) {
  rng r(GetParam());
  const std::vector<token> q = random_tokens(r, 30);
  const std::vector<token> d = random_tokens(r, 30);
  const token_histogram hq{std::span<const token>(q)};
  const token_histogram hd{std::span<const token>(d)};
  const std::size_t bound = token_histogram::intersection_size(hq, hd);
  EXPECT_GE(bound, be_lcs_length(q, d));
  EXPECT_GE(bound, be_lcs_length_exact(q, d));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramBound,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(HistogramBound, SimilarityUpperBoundDominatesTrueScore) {
  alphabet names;
  rng r(3);
  scene_params params;
  params.object_count = 10;
  for (int trial = 0; trial < 30; ++trial) {
    const be_string2d a = encode(random_scene(params, r, names));
    const be_string2d b = encode(random_scene(params, r, names));
    const be_histogram2d ha = make_histograms(a);
    const be_histogram2d hb = make_histograms(b);
    for (norm_kind norm : {norm_kind::query, norm_kind::max_len,
                           norm_kind::dice, norm_kind::min_len}) {
      similarity_options options;
      options.norm = norm;
      EXPECT_GE(similarity_upper_bound(ha, hb, norm) + 1e-12,
                similarity(a, b, options));
    }
  }
}

// ---------------------------------------------------------- pruning

image_database sibling_corpus(std::size_t bases) {
  image_database db;
  rng r(17);
  scene_params params;
  params.object_count = 8;
  params.symbol_pool = 10;
  for (std::size_t i = 0; i < bases; ++i) {
    const symbolic_image scene = random_scene(params, r, db.symbols());
    db.add("base" + std::to_string(i), scene);
    distortion_params sibling;
    sibling.keep_fraction = 0.8;
    sibling.jitter = 16;
    db.add("sib" + std::to_string(i),
           distort(scene, sibling, r, db.symbols()));
  }
  return db;
}

class PruningEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PruningEquivalence, PrunedTopKMatchesExhaustiveScan) {
  const image_database db = sibling_corpus(25);
  rng r(GetParam());
  distortion_params d;
  d.keep_fraction = 0.6;
  d.jitter = 8;
  alphabet scratch = db.symbols();
  const symbolic_image query = distort(
      db.record(static_cast<image_id>(GetParam() % db.size())).image, d, r,
      scratch);
  for (std::size_t k : {1u, 3u, 10u}) {
    for (norm_kind norm : {norm_kind::query, norm_kind::dice}) {
      query_options plain;
      plain.top_k = k;
      plain.similarity.norm = norm;
      query_options pruned = plain;
      pruned.histogram_pruning = true;
      search_stats stats;
      EXPECT_EQ(search(db, query, plain), search(db, query, pruned, &stats));
      EXPECT_EQ(stats.scored + stats.pruned, stats.scanned);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningEquivalence,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Pruning, ActuallyPrunesOnSelectiveQueries) {
  const image_database db = sibling_corpus(50);
  rng r(5);
  distortion_params d;
  d.keep_fraction = 0.7;
  alphabet scratch = db.symbols();
  const symbolic_image query = distort(db.record(0).image, d, r, scratch);
  query_options options;
  options.top_k = 1;
  options.histogram_pruning = true;
  search_stats stats;
  const auto results = search(db, query, options, &stats);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 0u);
  EXPECT_GT(stats.pruned, 0u) << "bound never engaged";
  EXPECT_LT(stats.scored, stats.scanned);
}

TEST(Pruning, MinScoreStillRespected) {
  const image_database db = sibling_corpus(10);
  query_options options;
  options.top_k = 5;
  options.histogram_pruning = true;
  options.min_score = 1.01;
  EXPECT_TRUE(search(db, db.record(0).image, options).empty());
}

TEST(Pruning, RecordHistogramsMatchStrings) {
  const image_database db = sibling_corpus(5);
  for (const db_record& rec : db.records()) {
    EXPECT_EQ(rec.histograms, make_histograms(rec.strings));
  }
}

}  // namespace
}  // namespace bes
