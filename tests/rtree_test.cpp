#include <gtest/gtest.h>

#include <algorithm>

#include "db/rtree.hpp"
#include "db/spatial_index.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

rect random_box(rng& r, int domain, int max_extent) {
  const int w = r.uniform_int(1, max_extent);
  const int h = r.uniform_int(1, max_extent);
  const int x = r.uniform_int(0, domain - w);
  const int y = r.uniform_int(0, domain - h);
  return rect{interval{x, x + w}, interval{y, y + h}};
}

TEST(Rtree, EmptyTree) {
  rtree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.search(rect::checked(0, 10, 0, 10)).empty());
  EXPECT_TRUE(tree.check_invariants());
}

TEST(Rtree, RejectsInvalidBox) {
  rtree tree;
  EXPECT_THROW(tree.insert(rect{interval{3, 3}, interval{0, 1}}, 1),
               std::invalid_argument);
}

TEST(Rtree, SingleEntry) {
  rtree tree;
  tree.insert(rect::checked(2, 5, 2, 5), 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.search(rect::checked(0, 3, 0, 3)),
            (std::vector<rtree::payload_t>{42}));
  EXPECT_TRUE(tree.search(rect::checked(6, 9, 6, 9)).empty());
  // Touching edges only (half-open) does not overlap.
  EXPECT_TRUE(tree.search(rect::checked(5, 9, 2, 5)).empty());
}

TEST(Rtree, GrowsAndKeepsInvariants) {
  rtree tree;
  rng r(1);
  for (int i = 0; i < 500; ++i) {
    tree.insert(random_box(r, 1000, 60), static_cast<rtree::payload_t>(i));
    if (i % 50 == 0) {
      EXPECT_TRUE(tree.check_invariants()) << "after insert " << i;
    }
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_TRUE(tree.check_invariants());
  EXPECT_GT(tree.height(), 1);
}

TEST(Rtree, DuplicateBoxesAllRetrieved) {
  rtree tree;
  const rect box = rect::checked(10, 20, 10, 20);
  for (rtree::payload_t p = 0; p < 30; ++p) tree.insert(box, p);
  auto hits = tree.search(rect::checked(15, 16, 15, 16));
  std::sort(hits.begin(), hits.end());
  ASSERT_EQ(hits.size(), 30u);
  EXPECT_EQ(hits.front(), 0u);
  EXPECT_EQ(hits.back(), 29u);
  EXPECT_TRUE(tree.check_invariants());
}

class RtreeOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtreeOracle, SearchMatchesBruteForce) {
  rng r(GetParam());
  rtree tree;
  std::vector<rect> boxes;
  const int count = r.uniform_int(1, 400);
  for (int i = 0; i < count; ++i) {
    boxes.push_back(random_box(r, 512, 80));
    tree.insert(boxes.back(), static_cast<rtree::payload_t>(i));
  }
  EXPECT_TRUE(tree.check_invariants());
  for (int probe = 0; probe < 20; ++probe) {
    const rect window = random_box(r, 512, 200);
    auto got = tree.search(window);
    std::sort(got.begin(), got.end());
    std::vector<rtree::payload_t> want;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (overlaps(boxes[i], window)) {
        want.push_back(static_cast<rtree::payload_t>(i));
      }
    }
    EXPECT_EQ(got, want);

    auto got_contained = tree.search_contained(window);
    std::sort(got_contained.begin(), got_contained.end());
    std::vector<rtree::payload_t> want_contained;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (contains(window, boxes[i])) {
        want_contained.push_back(static_cast<rtree::payload_t>(i));
      }
    }
    EXPECT_EQ(got_contained, want_contained);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtreeOracle,
                         ::testing::Range<std::uint64_t>(0, 20));

// ------------------------------------------------------------- index

TEST(SpatialIndex, FindsImagesByRegion) {
  image_database db;
  const symbol_id a = db.symbols().intern("A");
  const symbol_id b = db.symbols().intern("B");
  symbolic_image left(100, 100);
  left.add(a, rect::checked(0, 10, 0, 10));
  symbolic_image right(100, 100);
  right.add(a, rect::checked(80, 95, 80, 95));
  right.add(b, rect::checked(5, 15, 5, 15));
  db.add("left", left);
  db.add("right", right);

  const spatial_index index(db);
  EXPECT_EQ(index.indexed_icons(), 3u);
  EXPECT_EQ(index.images_overlapping(rect::checked(0, 20, 0, 20)),
            (std::vector<image_id>{0, 1}));
  EXPECT_EQ(index.images_overlapping(rect::checked(70, 100, 70, 100)),
            (std::vector<image_id>{1}));
  // Symbol filter: only image 1 has B in the lower-left region.
  EXPECT_EQ(index.images_overlapping(rect::checked(0, 20, 0, 20), b),
            (std::vector<image_id>{1}));
  EXPECT_EQ(index.images_contained(rect::checked(0, 16, 0, 16), b),
            (std::vector<image_id>{1}));
  EXPECT_TRUE(index.images_overlapping(rect::checked(40, 60, 40, 60)).empty());
}

TEST(SpatialIndex, AgreesWithLinearScanOnRandomCorpus) {
  image_database db;
  rng r(7);
  scene_params params;
  params.object_count = 6;
  params.width = 256;
  params.height = 256;
  params.max_extent = 48;
  for (int i = 0; i < 30; ++i) {
    db.add("s" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  const spatial_index index(db);
  for (int probe = 0; probe < 20; ++probe) {
    const rect window = random_box(r, 256, 100);
    std::vector<image_id> want;
    for (const db_record& rec : db.records()) {
      for (const icon& obj : rec.image.icons()) {
        if (overlaps(obj.mbr, window)) {
          want.push_back(rec.id);
          break;
        }
      }
    }
    EXPECT_EQ(index.images_overlapping(window), want);
  }
}

}  // namespace
}  // namespace bes
