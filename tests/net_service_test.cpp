// The scatter/gather equivalence suite, run over real loopback sockets via
// net::loopback_cluster.
//
// Contract under test: the network coordinator is invisible in the answer —
// for every kernel, shard count, and option set, coordinator::search over a
// serve fleet returns results bit-identical to sharded_database::search
// (and therefore to the flat unsharded scan), gossip on or off. Failure
// modes degrade instead of lying: a dead shard, an expired scan, or a full
// admission queue shows up in stats.degraded + shard_statuses while the
// surviving shards' contribution stays exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "db/database.hpp"
#include "db/shard.hpp"
#include "net/loopback.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

// Near-duplicate pairs so top-k boundaries see score ties, same recipe as
// the in-process sharding suite.
image_database sibling_corpus(std::size_t bases, std::uint64_t seed = 23) {
  image_database db;
  rng r(seed);
  scene_params params;
  params.object_count = 8;
  params.symbol_pool = 10;
  for (std::size_t i = 0; i < bases; ++i) {
    const symbolic_image scene = random_scene(params, r, db.symbols());
    db.add("base" + std::to_string(i), scene);
    distortion_params sibling;
    sibling.keep_fraction = 0.8;
    sibling.jitter = 16;
    db.add("sib" + std::to_string(i), distort(scene, sibling, r, db.symbols()));
  }
  return db;
}

symbolic_image distorted_query(const image_database& db, std::uint64_t seed,
                               double keep = 0.6) {
  rng r(seed);
  distortion_params d;
  d.keep_fraction = keep;
  d.jitter = 8;
  alphabet scratch = db.symbols();
  return distort(db.record(static_cast<image_id>(seed % db.size())).image, d,
                 r, scratch);
}

constexpr std::size_t kShardCounts[] = {1, 3, 8};

// The option sets the equivalence matrix sweeps: both scoring kernels
// (weighted rolling and exact bit-parallel LCS), thresholded and pruned
// scans, transform invariance, and unlimited k.
std::vector<std::pair<std::string, query_options>> option_matrix() {
  std::vector<std::pair<std::string, query_options>> matrix;
  {
    query_options o;
    o.top_k = 5;
    matrix.emplace_back("topk", o);
  }
  {
    query_options o;
    o.top_k = 8;
    o.min_score = 0.4;
    o.histogram_pruning = true;
    matrix.emplace_back("thresholded+pruned", o);
  }
  {
    query_options o;
    o.top_k = 5;
    o.similarity.exact_lcs = true;
    matrix.emplace_back("exact-lcs", o);
  }
  {
    query_options o;
    o.top_k = 5;
    o.transform_invariant = true;
    matrix.emplace_back("transform-invariant", o);
  }
  {
    query_options o;
    o.top_k = 0;  // unlimited: the full ranking must survive the merge
    matrix.emplace_back("unlimited", o);
  }
  return matrix;
}

void expect_all_ok(const search_stats& stats, std::size_t shards,
                   const std::string& label) {
  EXPECT_FALSE(stats.degraded) << label;
  ASSERT_EQ(stats.shard_statuses.size(), shards) << label;
  for (const shard_scan_status& status : stats.shard_statuses) {
    EXPECT_EQ(status.state, shard_scan_state::ok)
        << label << " shard " << status.shard;
  }
}

// ----------------------------------------------------------- equivalence

TEST(NetService, LoopbackSearchMatchesInProcessForEveryKernelAndShardCount) {
  const image_database flat = sibling_corpus(16);
  for (const std::size_t shards : kShardCounts) {
    const sharded_database sharded = make_sharded(flat, shards);
    net::loopback_cluster cluster(sharded);
    for (const auto& [label, options] : option_matrix()) {
      for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
        const symbolic_image query = distorted_query(flat, seed);
        const be_string2d strings = encode(query);
        const std::vector<symbol_id> symbols = distinct_symbols(query);
        const std::string tag =
            label + " shards=" + std::to_string(shards) + " seed=" +
            std::to_string(seed);

        const net::remote_result remote =
            cluster.front().search(strings, symbols, options);
        const std::vector<query_result> in_process =
            search(sharded, strings, symbols, options);
        const std::vector<query_result> flat_answer =
            search(flat, query, options);

        EXPECT_EQ(remote.results, in_process) << tag;
        EXPECT_EQ(remote.results, flat_answer) << tag;
        expect_all_ok(remote.stats, shards, tag);
      }
    }
  }
}

TEST(NetService, StatsMatchInProcessAccountingWhenNotPruned) {
  // Without pruning the wire changes nothing about the work done either:
  // every candidate a shard generates is scanned and scored exactly as the
  // in-process fan-out would.
  const image_database flat = sibling_corpus(12);
  const sharded_database sharded = make_sharded(flat, 3);
  net::loopback_cluster cluster(sharded);
  const symbolic_image query = distorted_query(flat, 3);
  query_options options;
  options.top_k = 6;

  const net::remote_result remote =
      cluster.front().search(encode(query), distinct_symbols(query), options);
  search_stats local;
  (void)search(sharded, encode(query), distinct_symbols(query), options,
               &local);
  EXPECT_EQ(remote.stats.scanned, local.scanned);
  EXPECT_EQ(remote.stats.scored, local.scored);
  EXPECT_EQ(remote.stats.pruned, local.pruned);
  EXPECT_EQ(remote.stats.candidates_generated, local.candidates_generated);
  EXPECT_EQ(remote.stats.scanned, remote.stats.scored + remote.stats.pruned);
}

TEST(NetService, BatchMatchesPerQuerySearch) {
  const image_database flat = sibling_corpus(12);
  for (const std::size_t shards : kShardCounts) {
    const sharded_database sharded = make_sharded(flat, shards);
    net::loopback_cluster cluster(sharded);
    query_options options;
    options.top_k = 4;
    options.histogram_pruning = true;

    std::vector<be_string2d> queries;
    std::vector<std::vector<symbol_id>> symbols;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const symbolic_image q = distorted_query(flat, seed);
      queries.push_back(encode(q));
      symbols.push_back(distinct_symbols(q));
    }

    const std::vector<net::remote_result> batch =
        cluster.front().search_batch(queries, symbols, options);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batch[i].results,
                search(sharded, queries[i], symbols[i], options))
          << "query " << i << " shards=" << shards;
      EXPECT_FALSE(batch[i].stats.degraded);
    }
  }
}

TEST(NetService, FetchSymbolsReturnsTheMasterAlphabet) {
  const image_database flat = sibling_corpus(10);
  const sharded_database sharded = make_sharded(flat, 3);
  net::loopback_cluster cluster(sharded);
  EXPECT_EQ(cluster.front().fetch_symbols(), flat.symbols().names());
}

// ---------------------------------------------------------------- gossip

TEST(NetService, GossipPrunesStrictlyMoreThanNoGossip) {
  // The acceptance pin for threshold gossip: identical answers, strictly
  // fewer LCS evaluations. sequential_scatter makes the comparison
  // deterministic — each shard receives the exact floor earned by the
  // shards before it, so the pruned run's scored count cannot wobble with
  // scheduling.
  //
  // The corpus draws from a wide symbol pool so token histograms actually
  // discriminate, and the query is an exact copy of a record owned by the
  // FIRST shard in scatter order: after shard 0 answers, the gossiped floor
  // is the perfect score, and every dissimilar candidate on shards 1 and 2
  // dies on its histogram upper bound. Without gossip those shards must
  // score candidates until their own local top-k earns a comparable floor —
  // which it never does, so they provably do strictly more work.
  image_database flat;
  {
    rng r(77);
    scene_params params;
    params.object_count = 6;
    params.symbol_pool = 32;
    for (std::size_t i = 0; i < 48; ++i) {
      flat.add("scene" + std::to_string(i),
               random_scene(params, r, flat.symbols()));
    }
  }
  const sharded_database sharded = make_sharded(flat, 3);

  query_options options;
  options.top_k = 1;
  options.histogram_pruning = true;
  options.use_index = false;  // every record is a candidate on every shard

  const image_id anchor = sharded.shard_global_ids(0).front();
  const symbolic_image query = flat.record(anchor).image;
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);

  net::coordinator_options gossip_on;
  gossip_on.sequential_scatter = true;
  gossip_on.gossip = true;
  net::coordinator_options gossip_off = gossip_on;
  gossip_off.gossip = false;

  net::loopback_cluster with(sharded, {}, gossip_on);
  net::loopback_cluster without(sharded, {}, gossip_off);

  const net::remote_result pruned = with.front().search(strings, symbols, options);
  const net::remote_result control =
      without.front().search(strings, symbols, options);

  EXPECT_EQ(pruned.results, control.results);
  EXPECT_EQ(pruned.results, search(sharded, strings, symbols, options));
  EXPECT_LT(pruned.stats.scored, control.stats.scored)
      << "gossiped floor failed to prune any remote work";
  EXPECT_GT(pruned.stats.pruned, control.stats.pruned);
}

TEST(NetService, ConcurrentGossipKeepsAnswersExact) {
  // Free-running gossip (the default): scored counts may wobble with
  // scheduling, the answer must not.
  const image_database flat = sibling_corpus(20);
  const sharded_database sharded = make_sharded(flat, 8);
  net::loopback_cluster cluster(sharded);
  query_options options;
  options.top_k = 3;
  options.histogram_pruning = true;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const symbolic_image query = distorted_query(flat, seed, 0.9);
    const net::remote_result remote =
        cluster.front().search(encode(query), distinct_symbols(query), options);
    EXPECT_EQ(remote.results,
              search(sharded, encode(query), distinct_symbols(query), options))
        << "seed " << seed;
  }
}

// --------------------------------------------------------- degraded modes

TEST(NetService, DeadShardDegradesInsteadOfSinkingTheQuery) {
  const image_database flat = sibling_corpus(16);
  const sharded_database sharded = make_sharded(flat, 3);
  net::loopback_cluster cluster(sharded);
  cluster.stop_server(1);

  query_options options;
  options.top_k = 0;      // unlimited…
  options.use_index = false;  // …over every id: fully checkable below
  const symbolic_image query = distorted_query(flat, 4);
  const net::remote_result remote =
      cluster.front().search(encode(query), distinct_symbols(query), options);

  EXPECT_TRUE(remote.stats.degraded);
  ASSERT_EQ(remote.stats.shard_statuses.size(), 3u);
  EXPECT_EQ(remote.stats.shard_statuses[1].state, shard_scan_state::failed);
  EXPECT_EQ(remote.stats.shard_statuses[0].state, shard_scan_state::ok);
  EXPECT_EQ(remote.stats.shard_statuses[2].state, shard_scan_state::ok);

  // The survivors' contribution is exact: identical to scoring only the
  // candidates owned by shards 0 and 2.
  std::vector<image_id> surviving;
  for (const std::size_t s : {std::size_t{0}, std::size_t{2}}) {
    const auto& ids = sharded.shard_global_ids(s);
    surviving.insert(surviving.end(), ids.begin(), ids.end());
  }
  std::sort(surviving.begin(), surviving.end());
  const std::vector<query_result> expected = search_candidates(
      sharded, encode(query), surviving, options);
  EXPECT_EQ(remote.results, expected);

  // The dead shard stays dead but the cluster stays usable: repeat queries
  // keep answering (degraded) instead of wedging the coordinator.
  const net::remote_result again =
      cluster.front().search(encode(query), distinct_symbols(query), options);
  EXPECT_TRUE(again.stats.degraded);
  EXPECT_EQ(again.results, expected);
}

TEST(NetService, SlowShardsExpireAtTheDeadlineAndDegrade) {
  const image_database flat = sibling_corpus(16);
  const sharded_database sharded = make_sharded(flat, 3);
  net::server_options slow;
  slow.scan_chunk = 1;       // many chunks, each delayed…
  slow.scan_delay_ms = 20;   // …so the budget dies mid-scan, not before it
  net::coordinator_options tight;
  tight.default_deadline_ms = 100;
  net::loopback_cluster cluster(sharded, slow, tight);

  query_options options;
  options.top_k = 5;
  const symbolic_image query = distorted_query(flat, 6);
  const net::remote_result remote =
      cluster.front().search(encode(query), distinct_symbols(query), options);

  EXPECT_TRUE(remote.stats.degraded);
  ASSERT_EQ(remote.stats.shard_statuses.size(), 3u);
  for (const shard_scan_status& status : remote.stats.shard_statuses) {
    EXPECT_TRUE(status.state == shard_scan_state::expired ||
                status.state == shard_scan_state::timed_out)
        << "shard " << status.shard << " ended " << to_string(status.state);
  }

  // The fleet recovers once the budget is sane again: the same query with a
  // roomy deadline is exact and un-degraded.
  net::coordinator_options roomy;
  net::loopback_cluster healthy(sharded, {}, roomy);
  const net::remote_result ok =
      healthy.front().search(encode(query), distinct_symbols(query), options);
  EXPECT_FALSE(ok.stats.degraded);
  EXPECT_EQ(ok.results,
            search(sharded, encode(query), distinct_symbols(query), options));
}

TEST(NetService, FullAdmissionQueueRejectsInsteadOfQueueingForever) {
  const image_database flat = sibling_corpus(10);
  const sharded_database sharded = make_sharded(flat, 3);
  net::server_options no_room;
  no_room.max_queue = 0;
  net::loopback_cluster cluster(sharded, no_room);

  query_options options;
  options.top_k = 5;
  const symbolic_image query = distorted_query(flat, 1);
  const net::remote_result remote =
      cluster.front().search(encode(query), distinct_symbols(query), options);

  EXPECT_TRUE(remote.stats.degraded);
  EXPECT_TRUE(remote.results.empty());
  ASSERT_EQ(remote.stats.shard_statuses.size(), 3u);
  for (const shard_scan_status& status : remote.stats.shard_statuses) {
    EXPECT_EQ(status.state, shard_scan_state::rejected)
        << "shard " << status.shard;
  }
}

TEST(NetService, CoordinatorWithNoShardsThrowsInvalidArgument) {
  net::coordinator coord({});
  query_options options;
  EXPECT_THROW((void)coord.search(be_string2d{}, {}, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace bes
