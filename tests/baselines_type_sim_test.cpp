#include <gtest/gtest.h>

#include "baselines/type_similarity.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

symbolic_image unique_scene(std::uint64_t seed, alphabet& names,
                            std::size_t count = 8) {
  rng r(seed);
  scene_params params;
  params.object_count = count;
  params.symbol_pool = count;
  params.unique_symbols = true;
  return random_scene(params, r, names);
}

TEST(TypeSimilarity, IdenticalImagesMatchAllObjects) {
  alphabet names;
  const symbolic_image img = unique_scene(1, names);
  for (similarity_type level :
       {similarity_type::type0, similarity_type::type1,
        similarity_type::type2}) {
    type_similarity_options options;
    options.level = level;
    const auto result = type_similarity(img, img, options);
    EXPECT_EQ(result.matched_objects, img.size());
    // The matching must be the identity pairing count-wise.
    EXPECT_EQ(result.matches.size(), img.size());
  }
}

TEST(TypeSimilarity, DisjointSymbolsMatchNothing) {
  alphabet names;
  symbolic_image a(20, 20);
  symbolic_image b(20, 20);
  a.add(names.intern("A"), rect::checked(0, 5, 0, 5));
  b.add(names.intern("B"), rect::checked(0, 5, 0, 5));
  const auto result = type_similarity(a, b);
  EXPECT_EQ(result.matched_objects, 0u);
  EXPECT_EQ(result.graph_vertices, 0u);
}

TEST(TypeSimilarity, StrictnessNestingOnRandomScenes) {
  alphabet names;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const symbolic_image q = unique_scene(seed, names, 6);
    const symbolic_image d = unique_scene(seed + 100, names, 6);
    type_similarity_options o0{similarity_type::type0, 0};
    type_similarity_options o1{similarity_type::type1, 0};
    type_similarity_options o2{similarity_type::type2, 0};
    const std::size_t s0 = type_similarity(q, d, o0).matched_objects;
    const std::size_t s1 = type_similarity(q, d, o1).matched_objects;
    const std::size_t s2 = type_similarity(q, d, o2).matched_objects;
    EXPECT_LE(s2, s1);
    EXPECT_LE(s1, s0);
  }
}

TEST(TypeSimilarity, SubsetQueryMatchesFully) {
  alphabet names;
  const symbolic_image scene = unique_scene(3, names, 8);
  symbolic_image query(scene.width(), scene.height());
  for (std::size_t i = 0; i < 4; ++i) query.add(scene.icons()[i]);
  const auto result = type_similarity(query, scene,
                                      {similarity_type::type2, 0});
  EXPECT_EQ(result.matched_objects, 4u);
}

TEST(TypeSimilarity, SingleMovedObjectDropsFromType2) {
  alphabet names;
  symbolic_image scene(40, 40);
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  const symbol_id c = names.intern("C");
  scene.add(a, rect::checked(0, 5, 0, 5));
  scene.add(b, rect::checked(10, 15, 10, 15));
  scene.add(c, rect::checked(20, 25, 20, 25));
  symbolic_image moved = scene;
  moved.remove(2);
  // C now overlaps B instead of being disjoint: pairwise relation changed.
  moved.add(c, rect::checked(12, 17, 12, 17));
  const auto result =
      type_similarity(scene, moved, {similarity_type::type2, 0});
  EXPECT_EQ(result.matched_objects, 2u);  // A and B still consistent
}

TEST(TypeSimilarity, DuplicateSymbolsUseInjectiveMatching) {
  alphabet names;
  const symbol_id a = names.intern("A");
  symbolic_image q(30, 30);
  q.add(a, rect::checked(0, 5, 0, 5));
  q.add(a, rect::checked(10, 15, 0, 5));
  symbolic_image d(30, 30);
  d.add(a, rect::checked(0, 5, 0, 5));
  d.add(a, rect::checked(10, 15, 0, 5));
  d.add(a, rect::checked(20, 25, 0, 5));
  const auto result = type_similarity(q, d, {similarity_type::type2, 0});
  // Both query As can be matched to distinct db As with consistent
  // relations; 2x3 = 6 candidate vertices.
  EXPECT_EQ(result.graph_vertices, 6u);
  EXPECT_EQ(result.matched_objects, 2u);
  // Injectivity: matched db icons are distinct.
  ASSERT_EQ(result.matches.size(), 2u);
  EXPECT_NE(result.matches[0].second, result.matches[1].second);
}

TEST(TypeSimilarity, GreedyFallbackEngages) {
  alphabet names;
  const symbolic_image q = unique_scene(5, names, 8);
  type_similarity_options options;
  options.greedy_above = 1;  // force greedy
  const auto result = type_similarity(q, q, options);
  EXPECT_TRUE(result.used_greedy);
  EXPECT_GE(result.matched_objects, 1u);
  EXPECT_LE(result.matched_objects, q.size());
}

TEST(TypeSimilarity, EmptyQueryMatchesNothing) {
  alphabet names;
  const symbolic_image d = unique_scene(6, names);
  const auto result = type_similarity(symbolic_image(10, 10), d);
  EXPECT_EQ(result.matched_objects, 0u);
}

}  // namespace
}  // namespace bes
