// besdb — command-line front end to the BE-string image database.
//
//   besdb create  --out corpus.besdb [--images N --objects K --seed S
//                                     --format text|binary|sharded
//                                     --shards N]
//   besdb convert corpus.besdb --out corpus.bseg [--format text|binary|sharded]
//   besdb compact corpus.bseg  [--out other.bseg --recover]
//   besdb compact corpus.scrp  [--recover --min-dead F --min-live-per-shard N]
//   besdb shard   info  corpus.scrp
//   besdb shard   split corpus.scrp [--shards N]   (default: one more)
//   besdb shard   merge corpus.scrp [--shards N]   (default: one fewer)
//   besdb info    corpus.besdb
//   besdb show    corpus.besdb --id 3
//   besdb query   corpus.besdb --id 3 [--keep 0.6 --jitter 4 --top-k 5
//                                      --transform-invariant --explain]
//   besdb explain corpus.besdb --id 3 [--sketch "..." --top-k 5]
//   besdb spatial corpus.besdb --query "S0 left-of S1 & S2 above S0"
//   besdb window  corpus.besdb --x0 0 --x1 100 --y0 0 --y1 100 [--symbol S0]
//   besdb eval    [--out report.json] [--baseline eval/baseline.json
//                  --update-baseline] [--bases N --objects K --seed S ...]
//   besdb serve   --corpus corpus.scrp --shard I [--port P --threads N]
//   besdb connect --servers host:port,host:port --sketch "..."
//                 [--top-k K --deadline-ms MS --no-gossip --shutdown]
//
// Every subcommand prints plain-text tables to stdout. Exit codes:
//   0  success (including --help)
//   1  runtime failure: I/O errors, corrupt corpora, out-of-range data,
//      a failed eval baseline check
//   2  usage error: unknown subcommand, unknown or malformed flags, missing
//      or contradictory flag combinations — usage/diagnostics on stderr
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>

#include "core/encoder.hpp"
#include "core/serializer.hpp"
#include "net/coordinator.hpp"
#include "net/server.hpp"
#include "db/compaction.hpp"
#include "db/hybrid_index.hpp"
#include "db/planner.hpp"
#include "db/query.hpp"
#include "db/result_cache.hpp"
#include "db/segment.hpp"
#include "db/shard_storage.hpp"
#include "db/spatial_index.hpp"
#include "db/storage.hpp"
#include "eval/report.hpp"
#include "metrics/stats.hpp"
#include "reasoning/query_lang.hpp"
#include "symbolic/scene_text.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/query_gen.hpp"

namespace {

using namespace bes;

// The exit-code contract from the header comment. Usage errors are the
// ones a caller can fix by reading --help; runtime errors need the
// environment fixed instead.
constexpr int exit_ok = 0;
constexpr int exit_runtime = 1;
constexpr int exit_usage = 2;

// --format flag -> db_format; empty/unknown reported via stderr + nullopt.
// A supplied --shards N (N > 0) implies the sharded corpus format;
// combining it with an explicit non-sharded --format is contradictory and
// errors instead of silently dropping one of the flags.
std::optional<db_format> parse_format(const arg_parser& args) {
  const std::string name = args.get_string("format");
  if (args.was_supplied("shards") && args.get_int("shards") > 0) {
    if (args.was_supplied("format") && name != "sharded") {
      std::fprintf(stderr,
                   "--shards %lld contradicts --format %s (sharded corpora "
                   "only)\n",
                   static_cast<long long>(args.get_int("shards")),
                   name.c_str());
      return std::nullopt;
    }
    return db_format::sharded;
  }
  if (name == "text") return db_format::text;
  if (name == "binary") return db_format::binary;
  if (name == "sharded") return db_format::sharded;
  std::fprintf(stderr, "unknown --format '%s' (want text|binary|sharded)\n",
               name.c_str());
  return std::nullopt;
}

const char* format_name(db_format format) {
  switch (format) {
    case db_format::text: return "text";
    case db_format::binary: return "binary";
    case db_format::sharded: return "sharded";
  }
  return "?";
}

std::size_t shard_count_flag(const arg_parser& args) {
  const long long n = args.get_int("shards");
  return n > 0 ? static_cast<std::size_t>(n) : default_shard_count;
}

int cmd_create(arg_parser& args) {
  const std::string out = args.get_string("out");
  if (out.empty()) {
    std::fprintf(stderr, "create: --out is required\n");
    return exit_usage;
  }
  const auto format = parse_format(args);
  if (!format) return exit_usage;
  rng r(static_cast<std::uint64_t>(args.get_int("seed")));
  scene_params params;
  params.width = static_cast<int>(args.get_int("width"));
  params.height = static_cast<int>(args.get_int("height"));
  params.object_count = static_cast<std::size_t>(args.get_int("objects"));
  params.symbol_pool = static_cast<std::size_t>(args.get_int("pool"));
  params.max_extent = std::max(4, params.width / 6);
  const auto images = static_cast<std::size_t>(args.get_int("images"));
  if (*format == db_format::sharded) {
    // The streaming path: scenes go straight through the shard_writer, so
    // `--images 10000000` never holds a corpus in memory.
    alphabet symbols;
    shard_writer writer(out, shard_count_flag(args));
    for (std::size_t i = 0; i < images; ++i) {
      writer.append("scene" + std::to_string(i),
                    random_scene(params, r, symbols), symbols);
    }
    writer.finish();
    std::printf("streamed %zu images (%zu symbols) to %s [sharded x%zu]\n",
                images, symbols.size(), out.c_str(), shard_count_flag(args));
    return 0;
  }
  image_database db;
  for (std::size_t i = 0; i < images; ++i) {
    db.add("scene" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  save_database(db, out, *format);
  std::printf("wrote %zu images (%zu symbols) to %s [%s]\n", db.size(),
              db.symbols().size(), out.c_str(), format_name(*format));
  return 0;
}

// Re-serializes a database in any format (text <-> BSEG1 segment <-> SCRP1
// sharded corpus). The input format is autodetected; the output format
// comes from --format (or --shards, which implies sharded).
int cmd_convert(arg_parser& args) {
  const std::string in = args.positional()[1];
  const std::string out = args.get_string("out");
  if (out.empty()) {
    std::fprintf(stderr, "convert: --out is required\n");
    return exit_usage;
  }
  const auto format = parse_format(args);
  if (!format) return exit_usage;
  const image_database db = load_database(in);
  save_database(db, out, *format, shard_count_flag(args));
  std::printf("converted %s (%zu images) to %s [%s]\n", in.c_str(), db.size(),
              out.c_str(), format_name(*format));
  return 0;
}

// The SCRP1 shard workflow: info prints the manifest + per-shard balance;
// split/merge stream the corpus into one-more/one-fewer shards (or an
// explicit --shards target) through a temp directory, then swap it in.
int cmd_shard(arg_parser& args) {
  if (args.positional().size() < 3) {
    std::fprintf(stderr, "shard: usage: besdb shard <info|split|merge> DIR\n");
    return exit_usage;
  }
  const std::string& action = args.positional()[1];
  const std::string& dir = args.positional()[2];
  // split/merge swap the whole corpus DIRECTORY; a manifest-file path (fine
  // for info and every load) would make the swap replace just that file.
  if (action != "info" && !std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "shard %s: %s is not a corpus directory\n",
                 action.c_str(), dir.c_str());
    return 1;
  }
  const shard_manifest manifest = read_shard_manifest(dir);

  if (action == "info") {
    std::printf("sharded corpus: %s\n", dir.c_str());
    std::printf("shards  : %zu (x%zu ring replicas)\n", manifest.shard_count,
                manifest.ring_replicas);
    std::printf("images  : %llu\n",
                static_cast<unsigned long long>(manifest.images));
    text_table table({"shard", "segment", "images", "share"});
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
      const double share =
          manifest.images == 0
              ? 0.0
              : 100.0 * static_cast<double>(manifest.shards[s].images) /
                    static_cast<double>(manifest.images);
      table.add_row({std::to_string(s), manifest.shards[s].file,
                     std::to_string(manifest.shards[s].images),
                     fmt_double(share, 1) + "%"});
    }
    std::fputs(table.str().c_str(), stdout);
    return 0;
  }

  if (action != "split" && action != "merge") {
    std::fprintf(stderr, "shard: unknown action '%s' (want info|split|merge)\n",
                 action.c_str());
    return exit_usage;
  }
  std::size_t target = action == "split" ? manifest.shard_count + 1
                                         : manifest.shard_count - 1;
  if (args.was_supplied("shards")) {
    const long long flag = args.get_int("shards");
    target = flag > 0 ? static_cast<std::size_t>(flag) : 0;
    const bool valid = action == "split" ? target > manifest.shard_count
                                         : target < manifest.shard_count;
    if (target == 0 || !valid) {
      std::fprintf(stderr,
                   "shard %s: --shards %lld does not %s %zu shards\n",
                   action.c_str(), flag,
                   action == "split" ? "grow" : "shrink",
                   manifest.shard_count);
      return 1;
    }
  }
  if (target == 0) {
    std::fprintf(stderr, "shard merge: already at 1 shard\n");
    return 1;
  }

  // Consistent hashing: count the records that actually change shards —
  // pure ring math, no I/O.
  const shard_ring before(manifest.shard_count, manifest.ring_replicas);
  const shard_ring after(target, manifest.ring_replicas);
  std::uint64_t moved = 0;
  for (std::uint64_t g = 0; g < manifest.images; ++g) {
    const auto id = static_cast<image_id>(g);
    if (before.shard_of(id) != after.shard_of(id)) ++moved;
  }

  // Swap via two renames so no moment exists where the only copy of the
  // corpus is deleted: old is parked at .old until the new one is in place.
  // Siblings are derived through fs::path (a trailing slash on `dir` must
  // not nest the temp corpus inside the source).
  std::filesystem::path corpus(dir);
  if (corpus.filename().empty()) corpus = corpus.parent_path();
  const std::filesystem::path tmp =
      corpus.parent_path() / (corpus.filename().string() + ".reshard-tmp");
  const std::filesystem::path old =
      corpus.parent_path() / (corpus.filename().string() + ".reshard-old");
  std::filesystem::remove_all(tmp);
  std::filesystem::remove_all(old);
  reshard(corpus, tmp, target);
  std::filesystem::rename(corpus, old);
  std::filesystem::rename(tmp, corpus);
  std::filesystem::remove_all(old);
  std::printf(
      "resharded %s: %zu -> %zu shards, %llu of %llu records moved (%.1f%%)\n",
      dir.c_str(), manifest.shard_count, target,
      static_cast<unsigned long long>(moved),
      static_cast<unsigned long long>(manifest.images),
      manifest.images == 0 ? 0.0
                           : 100.0 * static_cast<double>(moved) /
                                 static_cast<double>(manifest.images));
  return 0;
}

// Folds tombstones out of a BSEG1 segment or an SCRP1 corpus (and, with
// --recover, salvages the longest valid prefix of truncated segments). Both
// paths write aside and rename, so an interrupted compact never destroys
// the input — rerunning `compact` on a corpus also repairs a compaction a
// crash cut short.
int cmd_compact(arg_parser& args) {
  const std::string in = args.positional()[1];
  segment_read_options options;
  options.recover_tail = args.get_bool("recover");
  const bool auto_mode = args.get_bool("auto");
  const db_format format = detect_format(in);
  compaction_stats stats;
  if (format == db_format::binary) {
    if (auto_mode) {
      std::fprintf(stderr,
                   "compact: --auto needs an SCRP1 corpus (a segment compact "
                   "always rewrites)\n");
      return exit_usage;
    }
    const std::string out =
        args.get_string("out").empty() ? in : args.get_string("out");
    stats = compact_segment(in, out, options);
    std::printf("compacted %s -> %s:\n", in.c_str(), out.c_str());
  } else if (format == db_format::sharded) {
    compaction_policy policy;
    policy.min_dead_fraction = args.get_double("min-dead");
    const long long per_shard = args.get_int("min-live-per-shard");
    policy.min_live_per_shard =
        per_shard > 0 ? static_cast<std::uint64_t>(per_shard) : 0;
    if (auto_mode) {
      // The background-trigger path: fire only when the footer-level dead
      // fraction crosses the maintenance threshold (no records read for a
      // "no" answer).
      maintenance_policy maintenance;
      maintenance.max_dead_fraction = args.get_double("max-dead-frac");
      const long long min_tomb = args.get_int("min-tombstones");
      maintenance.min_tombstones =
          min_tomb > 0 ? static_cast<std::uint64_t>(min_tomb) : 0;
      stats = maybe_compact_corpus(in, maintenance, policy, options);
    } else {
      stats = compact_corpus(in, policy, options);
    }
    if (!stats.compacted) {
      std::printf(
          "%s left alone: %llu tombstones of %llu records is below the "
          "compaction policy\n",
          in.c_str(), static_cast<unsigned long long>(stats.tombstones_folded),
          static_cast<unsigned long long>(stats.records_before));
      return 0;
    }
    std::printf("compacted %s in place:\n", in.c_str());
  } else {
    std::fprintf(stderr,
                 "compact: %s is a text database (use convert first)\n",
                 in.c_str());
    return 1;
  }
  text_table table({"metric", "before", "after"});
  table.add_row({"records", std::to_string(stats.records_before),
                 std::to_string(stats.records_after)});
  table.add_row({"bytes", std::to_string(stats.bytes_before),
                 std::to_string(stats.bytes_after)});
  table.add_row({"shards", std::to_string(stats.shards_before),
                 std::to_string(stats.shards_after)});
  std::fputs(table.str().c_str(), stdout);
  std::printf("tombstones folded: %llu%s\n",
              static_cast<unsigned long long>(stats.tombstones_folded),
              stats.recovered ? " (recovered truncated tail)" : "");
  return 0;
}

int cmd_info(const image_database& db) {
  sample_stats icons;
  sample_stats tokens;
  for (const db_record& rec : db.records()) {
    icons.add(static_cast<double>(rec.image.size()));
    tokens.add(static_cast<double>(rec.strings.total_tokens()));
  }
  std::printf("images : %zu\n", db.size());
  std::printf("symbols: %zu\n", db.symbols().size());
  if (db.size() > 0) {
    std::printf("icons  : %s\n", icons.summary(1).c_str());
    std::printf("tokens : %s (per image, both axes)\n",
                tokens.summary(1).c_str());
  }
  return 0;
}

int cmd_show(const image_database& db, arg_parser& args) {
  const auto id = static_cast<image_id>(args.get_int("id"));
  if (id >= db.size()) {
    std::fprintf(stderr, "show: id %u out of range (db has %zu images)\n", id,
                 db.size());
    return 1;
  }
  const db_record& rec = db.record(id);
  std::printf("image %u '%s'  %dx%d, %zu icons\n", rec.id, rec.name.c_str(),
              rec.image.width(), rec.image.height(), rec.image.size());
  text_table table({"symbol", "mbr"});
  for (const icon& obj : rec.image.icons()) {
    table.add_row({db.symbols().name_of(obj.symbol), to_string(obj.mbr)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\npaper notation : %s\n",
              paper_style(rec.strings, db.symbols()).c_str());
  std::printf("machine form   : %s\n",
              to_text(rec.strings, db.symbols()).c_str());
  return 0;
}

// Builds the query image for `query` / `explain` from --sketch or
// --id+distortion; false (with a message) when --id is out of range.
bool build_query(const image_database& db, arg_parser& args,
                 const char* command, symbolic_image& query,
                 std::string& provenance) {
  alphabet scratch = db.symbols();
  if (const std::string sketch = args.get_string("sketch"); !sketch.empty()) {
    // Query by sketch: "12x11: A 2 6 3 9; B 4 10 1 5".
    query = parse_scene(sketch, scratch);
    provenance = "sketch";
    return true;
  }
  const auto id = static_cast<image_id>(args.get_int("id"));
  if (id >= db.size()) {
    std::fprintf(stderr, "%s: id %u out of range\n", command, id);
    return false;
  }
  rng r(static_cast<std::uint64_t>(args.get_int("seed")));
  distortion_params d;
  d.keep_fraction = args.get_double("keep");
  d.jitter = static_cast<int>(args.get_int("jitter"));
  query = distort(db.record(id).image, d, r, scratch);
  provenance = "distorted from image " + std::to_string(id);
  return true;
}

// Prints the plan entries a planned search recorded: chosen access path,
// adaptive pad, and the planner's candidate estimate against what the path
// actually generated.
void print_plans(const search_stats& stats) {
  text_table table({"path", "pad", "est. candidates", "actual"});
  for (const planned_scan& plan : stats.plans) {
    table.add_row({std::string(to_string(plan.path)),
                   std::to_string(plan.pad),
                   std::to_string(plan.estimated_candidates),
                   std::to_string(plan.actual_candidates)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("scanned %zu = scored %zu + pruned %zu (of %zu generated)\n",
              stats.scanned, stats.scored, stats.pruned,
              stats.candidates_generated);
}

// The "--cache / --no-cache / --repeat" trio shared by query and connect.
// Returns false (usage error) on the contradictory pair; `repeats` is always
// >= 1 afterwards.
bool parse_cache_flags(arg_parser& args, const char* command, bool& use_cache,
                       std::size_t& repeats) {
  use_cache = args.get_bool("cache");
  if (use_cache && args.get_bool("no-cache")) {
    std::fprintf(stderr, "%s: --cache and --no-cache are contradictory\n",
                 command);
    return false;
  }
  const long long r = args.get_int("repeat");
  repeats = r > 1 ? static_cast<std::size_t>(r) : 1;
  return true;
}

void print_cache_stats(const result_cache_stats& stats) {
  std::printf("cache: hits %llu misses %llu delta-refreshes %llu "
              "evictions %llu\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.delta_refreshes),
              static_cast<unsigned long long>(stats.evictions));
}

int cmd_query(const image_database& db, arg_parser& args) {
  symbolic_image query(1, 1);
  std::string provenance;
  if (!build_query(db, args, "query", query, provenance)) return 1;

  query_options options;
  options.top_k = static_cast<std::size_t>(args.get_int("top-k"));
  options.transform_invariant = args.get_bool("transform-invariant");

  bool use_cache = false;
  std::size_t repeats = 1;
  if (!parse_cache_flags(args, "query", use_cache, repeats)) return exit_usage;

  const bool explain = args.get_bool("explain");
  std::vector<query_result> results;
  search_stats stats;
  result_cache cache;
  if (explain) {
    // Route through the planner so the printed plan is the one that ran.
    const spatial_index spatial(db);
    const hybrid_index hybrid(db);
    const planner_context ctx{&db, &spatial, &hybrid};
    results = search_planned(ctx, query, options, &stats);
  } else if (use_cache) {
    // --repeat with --cache is the point: the first pass misses and
    // populates, every later pass is a hit, and the stats line proves it.
    for (std::size_t i = 0; i < repeats; ++i) {
      results = search_cached(db, cache, query, options, &stats);
    }
  } else {
    for (std::size_t i = 0; i < repeats; ++i) {
      results = search(db, query, options);
    }
  }

  std::printf("query: %zu icons (%s)\n\n", query.size(), provenance.c_str());
  if (explain) {
    print_plans(stats);
    std::printf("\n");
  }
  text_table table({"rank", "image", "score", "transform"});
  int rank = 1;
  for (const query_result& result : results) {
    table.add_row({std::to_string(rank++), db.record(result.id).name,
                   fmt_double(result.score, 3),
                   std::string(to_string(result.transform))});
  }
  std::fputs(table.str().c_str(), stdout);
  if (use_cache) print_cache_stats(cache.stats());
  return 0;
}

// `besdb explain` — plan a query without caring about its results: show
// the access path the cost model picks, the adaptive pad, and how the
// candidate estimate compares with what the chosen path really generates.
int cmd_explain(const image_database& db, arg_parser& args) {
  symbolic_image query(1, 1);
  std::string provenance;
  if (!build_query(db, args, "explain", query, provenance)) return 1;

  query_options options;
  options.top_k = static_cast<std::size_t>(args.get_int("top-k"));
  options.transform_invariant = args.get_bool("transform-invariant");

  const spatial_index spatial(db);
  const hybrid_index hybrid(db);
  const planner_context ctx{&db, &spatial, &hybrid};

  search_stats stats;
  const auto results = search_planned(ctx, query, options, &stats);

  std::printf("query: %zu icons (%s), db: %zu images\n", query.size(),
              provenance.c_str(), db.size());
  std::printf("adaptive pad: %d\n\n", adaptive_pad(query));
  print_plans(stats);
  std::printf("top score: %s over %zu result%s\n",
              results.empty() ? "-" : fmt_double(results.front().score, 3).c_str(),
              results.size(), results.size() == 1 ? "" : "s");
  return 0;
}

int cmd_spatial(const image_database& db, arg_parser& args) {
  const std::string text = args.get_string("query");
  if (text.empty()) {
    std::fprintf(stderr, "spatial: --query is required\n");
    return exit_usage;
  }
  const spatial_query query = parse_query(text);
  const auto ranked =
      search_structured(db, query, args.get_bool("full-only"));
  text_table table({"image", "satisfied", "of"});
  std::size_t shown = 0;
  for (const structured_result& result : ranked) {
    if (shown++ == static_cast<std::size_t>(args.get_int("top-k"))) break;
    table.add_row({db.record(result.id).name, std::to_string(result.satisfied),
                   std::to_string(result.total)});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

int cmd_window(const image_database& db, arg_parser& args) {
  const rect window = rect::checked(static_cast<int>(args.get_int("x0")),
                                    static_cast<int>(args.get_int("x1")),
                                    static_cast<int>(args.get_int("y0")),
                                    static_cast<int>(args.get_int("y1")));
  const spatial_index index(db);
  std::optional<symbol_id> symbol;
  if (const std::string name = args.get_string("symbol"); !name.empty()) {
    if (!db.symbols().knows(name)) {
      std::fprintf(stderr, "window: unknown symbol '%s'\n", name.c_str());
      return 1;
    }
    symbol = db.symbols().id_of(name);
  }
  const auto hits = index.images_overlapping(window, symbol);
  std::printf("%zu images have %s icon overlapping %s:\n", hits.size(),
              symbol ? ("a '" + args.get_string("symbol") + "'").c_str()
                     : "an",
              to_string(window).c_str());
  for (image_id id : hits) {
    std::printf("  %s\n", db.record(id).name.c_str());
  }
  return 0;
}

// Runs the retrieval-quality harness over the seeded eval corpus, prints a
// per-cell summary table, and optionally writes the JSON report, checks it
// against a baseline, or regenerates the baseline (see README "Measuring
// retrieval quality").
int cmd_eval(arg_parser& args) {
  const std::string baseline_path = args.get_string("baseline");
  const bool update = args.get_bool("update-baseline");
  if (update && baseline_path.empty()) {
    std::fprintf(stderr, "eval: --update-baseline needs --baseline PATH\n");
    return exit_usage;
  }

  // Corpus params layer: library defaults, overridden by the baseline's own
  // recorded params when one exists (checking must compare like with like,
  // and regenerating should keep the committed corpus unless told
  // otherwise), overridden by explicitly supplied flags.
  eval_corpus_params params;
  std::optional<eval_report> baseline_report;
  if (!baseline_path.empty() && std::filesystem::exists(baseline_path)) {
    baseline_report = report_from_json(read_json_file(baseline_path));
    params = baseline_report->params;
  } else if (!baseline_path.empty() && !update) {
    std::fprintf(stderr, "eval: baseline %s does not exist\n",
                 baseline_path.c_str());
    return 1;
  }
  if (args.was_supplied("seed")) {
    params.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  }
  if (args.was_supplied("bases")) {
    params.base_scenes = static_cast<std::size_t>(args.get_int("bases"));
  }
  if (args.was_supplied("objects")) {
    params.objects = static_cast<std::size_t>(args.get_int("objects"));
  }
  if (args.was_supplied("domain")) {
    params.domain = static_cast<int>(args.get_int("domain"));
  }
  if (args.was_supplied("pool")) {
    params.symbol_pool = static_cast<std::size_t>(args.get_int("pool"));
  }
  if (args.was_supplied("queries-per-base")) {
    params.queries_per_base =
        static_cast<std::size_t>(args.get_int("queries-per-base"));
  }

  // --threads sets worker parallelism (results are identical by
  // construction). The matrix's thread-scaling cells mirror the baseline
  // when checking — cell names embed the thread count, so the check must
  // run the baseline's matrix, not the flag's.
  const auto threads = static_cast<unsigned>(args.get_int("threads"));
  unsigned matrix_threads = threads;
  if (baseline_report && !update) {
    matrix_threads = 1;
    for (const eval_cell_result& cell : baseline_report->cells) {
      matrix_threads = std::max(matrix_threads, cell.config.threads);
    }
  }
  std::printf("eval: %zu base scenes x %zu family, %zu queries, seed %llu\n",
              params.base_scenes, eval_family_size,
              params.base_scenes * params.queries_per_base,
              static_cast<unsigned long long>(params.seed));
  const eval_corpus corpus = build_eval_corpus(params, threads);
  const auto matrix = default_eval_matrix(matrix_threads);
  const eval_report report = run_eval(corpus, matrix);

  text_table table({"cell", "P@1", "P@10", "MRR", "nDCG@10", "recall-vs-exh",
                    "scanned", "pruned"});
  for (const eval_cell_result& cell : report.cells) {
    table.add_row({cell.config.name(), fmt_double(cell.metrics.p_at_1, 3),
                   fmt_double(cell.metrics.p_at_10, 3),
                   fmt_double(cell.metrics.mrr, 3),
                   fmt_double(cell.metrics.ndcg_at_10, 3),
                   fmt_double(cell.metrics.recall_vs_exhaustive, 4),
                   std::to_string(cell.metrics.scanned),
                   std::to_string(cell.metrics.pruned)});
  }
  std::fputs(table.str().c_str(), stdout);

  if (const std::string out = args.get_string("out"); !out.empty()) {
    write_json_file(report_to_json(report), out);
    std::printf("\nwrote report to %s\n", out.c_str());
  }
  if (update) {
    write_json_file(make_baseline(report), baseline_path);
    std::printf("wrote baseline to %s\n", baseline_path.c_str());
    return 0;
  }
  if (!baseline_path.empty()) {
    const gate_result gate =
        check_against_baseline(report, read_json_file(baseline_path));
    if (!gate.pass) {
      std::fprintf(stderr, "\neval: baseline check FAILED:\n");
      for (const std::string& failure : gate.failures) {
        std::fprintf(stderr, "  %s\n", failure.c_str());
      }
      return 1;
    }
    std::printf("\nbaseline check passed (%s)\n", baseline_path.c_str());
  }
  return 0;
}

// `besdb serve` runs until a signal asks it to stop; the handler can only
// flip a flag, and the main loop polls it alongside the server's own stop
// state (a SHUTDOWN frame from a coordinator also ends the loop).
volatile std::sig_atomic_t g_serve_stop = 0;

extern "C" void serve_signal_handler(int) { g_serve_stop = 1; }

// Serves one shard of an SCRP1 corpus over the frame protocol. Loads ONLY
// that shard's segment (load_shard), so each fleet member reads its own
// file and nothing else.
int cmd_serve(arg_parser& args) {
  const std::string corpus = args.get_string("corpus");
  if (corpus.empty()) {
    std::fprintf(stderr, "serve: --corpus is required\n");
    return exit_usage;
  }
  const long long shard_flag = args.get_int("shard");
  if (shard_flag < 0) {
    std::fprintf(stderr, "serve: --shard must be >= 0\n");
    return exit_usage;
  }
  const auto shard = static_cast<std::size_t>(shard_flag);
  loaded_shard ls = load_shard(corpus, shard);

  net::server_options options;
  options.port = static_cast<std::uint16_t>(args.get_int("port"));
  if (const long long threads = args.get_int("threads"); threads > 0) {
    options.scan_threads = static_cast<unsigned>(threads);
  }
  net::shard_server server(ls.db, std::move(ls.global_ids),
                           static_cast<std::uint32_t>(shard), options);
  std::printf("serving shard %zu/%zu of %s (%zu images) on 127.0.0.1:%u\n",
              shard, ls.shard_count, corpus.c_str(), ls.db.size(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (g_serve_stop == 0 && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  std::printf("shard %zu stopped\n", shard);
  return exit_ok;
}

// "--servers host:port,host:port,..." -> endpoints. Empty/malformed entries
// report via stderr and return an empty list (a usage error: no fleet, no
// query).
std::vector<net::endpoint> parse_servers(const std::string& spec) {
  std::vector<net::endpoint> endpoints;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const std::size_t colon = entry.rfind(':');
    unsigned long port = 0;
    std::size_t digits = 0;
    if (colon != std::string::npos && colon + 1 < entry.size()) {
      try {
        port = std::stoul(entry.substr(colon + 1), &digits);
      } catch (const std::exception&) {
        digits = 0;
      }
    }
    if (colon == std::string::npos || colon == 0 ||
        digits != entry.size() - colon - 1 || port == 0 || port > 65535) {
      std::fprintf(stderr, "connect: malformed server '%s' (want host:port)\n",
                   entry.c_str());
      return {};
    }
    endpoints.push_back(net::endpoint{entry.substr(0, colon),
                                      static_cast<std::uint16_t>(port)});
  }
  if (endpoints.empty()) {
    std::fprintf(stderr, "connect: --servers host:port[,host:port...] is "
                         "required\n");
  }
  return endpoints;
}

// Scatters a sketch query across a serve fleet and prints the merged
// answer plus how every shard ended. The query alphabet comes from the
// fleet itself (fetch_symbols), so connect needs no local corpus at all.
int cmd_connect(arg_parser& args) {
  const std::vector<net::endpoint> servers =
      parse_servers(args.get_string("servers"));
  if (servers.empty()) return exit_usage;

  bool use_cache = false;
  std::size_t repeats = 1;
  if (!parse_cache_flags(args, "connect", use_cache, repeats)) {
    return exit_usage;
  }

  net::coordinator_options options;
  if (const long long ms = args.get_int("deadline-ms"); ms >= 0) {
    options.default_deadline_ms = static_cast<unsigned>(ms);
  }
  options.gossip = !args.get_bool("no-gossip");
  if (use_cache) options.cache_entries = 1024;
  net::coordinator coord(servers, options);

  if (args.get_bool("shutdown")) {
    coord.shutdown_servers();
    std::printf("asked %zu server%s to stop\n", servers.size(),
                servers.size() == 1 ? "" : "s");
    return exit_ok;
  }

  const std::string sketch = args.get_string("sketch");
  if (sketch.empty()) {
    std::fprintf(stderr, "connect: --sketch is required (or --shutdown)\n");
    return exit_usage;
  }
  alphabet symbols;
  for (const std::string& name : coord.fetch_symbols()) {
    symbols.intern(name);
  }
  const symbolic_image query = parse_scene(sketch, symbols);
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> query_symbols = distinct_symbols(query);

  query_options qopts;
  qopts.top_k = static_cast<std::size_t>(args.get_int("top-k"));
  qopts.transform_invariant = args.get_bool("transform-invariant");
  net::remote_result answer;
  for (std::size_t i = 0; i < repeats; ++i) {
    answer = coord.search(strings, query_symbols, qopts);
  }

  std::printf("query: %zu icons over %zu shards (%zu symbols)\n\n",
              query.size(), servers.size(), symbols.size());
  text_table table({"rank", "image", "score", "transform"});
  int rank = 1;
  for (const query_result& result : answer.results) {
    table.add_row({std::to_string(rank++), std::to_string(result.id),
                   fmt_double(result.score, 3),
                   std::string(to_string(result.transform))});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\nscanned %zu = scored %zu + pruned %zu (of %zu generated)\n",
              answer.stats.scanned, answer.stats.scored, answer.stats.pruned,
              answer.stats.candidates_generated);
  for (const shard_scan_status& status : answer.stats.shard_statuses) {
    std::printf("shard %u: %s\n", status.shard,
                std::string(to_string(status.state)).c_str());
  }
  if (use_cache) print_cache_stats(coord.cache_stats());
  if (answer.stats.degraded) {
    std::fprintf(stderr, "connect: answer is DEGRADED (see shard states)\n");
  }
  return exit_ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bes;
  arg_parser args(
      "besdb <create|convert|compact|shard|info|show|query|explain|spatial|"
      "window|eval|serve|connect> [db-file] [flags]");
  args.add_string("out", "", "create/convert/compact: output path");
  args.add_string("format", "text",
                  "create/convert: output format, text|binary (BSEG1)|sharded "
                  "(SCRP1 corpus directory)");
  args.add_int("shards", 0,
               "create/convert: shard count for the sharded format (> 0 "
               "implies --format sharded); shard split/merge: target count");
  args.add_bool("recover", false,
                "compact: salvage the valid prefix of a truncated segment");
  args.add_double("min-dead", 0.0,
                  "compact (corpus): skip the rewrite while the dead "
                  "fraction stays below this");
  args.add_int("min-live-per-shard", 0,
               "compact (corpus): merge shards until each holds at least "
               "this many live records");
  args.add_bool("auto", false,
                "compact (corpus): fire only when the dead fraction crosses "
                "--max-dead-frac (footer-level check, no records read)");
  args.add_double("max-dead-frac", 0.25,
                  "compact --auto: dead/total threshold that triggers the "
                  "rewrite");
  args.add_int("min-tombstones", 1,
               "compact --auto: never fire below this many tombstones");
  args.add_bool("cache", false,
                "query/connect: serve repeats through the result cache and "
                "print a cache-stats line");
  args.add_bool("no-cache", false,
                "query/connect: explicitly disable the result cache (the "
                "default; contradicts --cache)");
  args.add_int("repeat", 1,
               "query/connect: run the same search this many times (with "
               "--cache the repeats hit)");
  args.add_int("images", 30, "create: number of images");
  args.add_int("objects", 8, "create: icons per image");
  args.add_int("pool", 8, "create: symbol pool size");
  args.add_int("width", 256, "create: image width");
  args.add_int("height", 256, "create: image height");
  args.add_int("seed", 1, "create/query: RNG seed");
  args.add_int("id", 0, "show/query: image id");
  args.add_double("keep", 0.7, "query: fraction of icons kept");
  args.add_int("jitter", 4, "query: max icon displacement");
  args.add_string("sketch", "",
                  "query: a scene sketch like \"12x11: A 2 6 3 9; B 4 10 1 5\""
                  " (overrides --id)");
  args.add_int("top-k", 10, "query/spatial: results to print");
  args.add_bool("transform-invariant", false, "query: best of 8 reversals");
  args.add_bool("explain", false,
                "query: run through the cost-based planner and print the "
                "chosen access path, pad, and candidate counts");
  args.add_string("query", "", "spatial: query text, e.g. \"A left-of B\"");
  args.add_int("bases", 24, "eval: base scenes (each expands to a family)");
  args.add_int("domain", 256, "eval: scene domain (width = height)");
  args.add_int("queries-per-base", 2, "eval: distorted queries per base");
  args.add_int("threads", 4,
               "eval: worker threads (results are identical; a baseline "
               "check always runs the baseline's own matrix)");
  args.add_string("baseline", "",
                  "eval: baseline JSON to check against (its recorded corpus "
                  "params win unless overridden by explicit flags)");
  args.add_bool("update-baseline", false,
                "eval: rewrite --baseline from this run instead of checking");
  args.add_bool("full-only", false, "spatial: exact matches only");
  args.add_int("x0", 0, "window: x low");
  args.add_int("x1", 1, "window: x high");
  args.add_int("y0", 0, "window: y low");
  args.add_int("y1", 1, "window: y high");
  args.add_string("symbol", "", "window: restrict to a symbol");
  args.add_string("corpus", "", "serve: SCRP1 corpus directory");
  args.add_int("shard", 0, "serve: shard index to serve");
  args.add_int("port", 0, "serve: TCP port (0 = pick an ephemeral port)");
  args.add_string("servers", "",
                  "connect: comma-separated host:port shard server list");
  args.add_int("deadline-ms", 30000,
               "connect: per-query budget in ms (0 = wait forever)");
  args.add_bool("no-gossip", false,
                "connect: do not gossip the global k-th score to shards");
  args.add_bool("shutdown", false,
                "connect: ask every server to stop instead of querying");

  // Flag parsing has its own error class: unknown or malformed flags throw
  // std::invalid_argument and exit 2, while everything after dispatch that
  // throws is a runtime failure and exits 1.
  try {
    if (!args.parse(argc, argv)) {  // --help
      std::fputs(args.usage().c_str(), stdout);
      return exit_ok;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "besdb: %s\n%s", error.what(), args.usage().c_str());
    return exit_usage;
  }
  if (args.positional().empty()) {
    std::fputs(args.usage().c_str(), stderr);
    return exit_usage;
  }
  try {
    const std::string& command = args.positional()[0];
    const bool known =
        command == "create" || command == "convert" || command == "compact" ||
        command == "shard" || command == "info" || command == "show" ||
        command == "query" || command == "explain" || command == "spatial" ||
        command == "window" || command == "eval" || command == "serve" ||
        command == "connect";
    if (!known) {
      std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(),
                   args.usage().c_str());
      return exit_usage;
    }
    if (command == "create") return cmd_create(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "connect") return cmd_connect(args);
    if (args.positional().size() < 2) {
      std::fprintf(stderr, "%s: missing database file\n", command.c_str());
      return exit_usage;
    }
    if (command == "convert") return cmd_convert(args);
    if (command == "compact") return cmd_compact(args);
    if (command == "shard") return cmd_shard(args);
    const image_database db = load_database(args.positional()[1]);
    if (command == "info") return cmd_info(db);
    if (command == "show") return cmd_show(db, args);
    if (command == "query") return cmd_query(db, args);
    if (command == "explain") return cmd_explain(db, args);
    if (command == "spatial") return cmd_spatial(db, args);
    return cmd_window(db, args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "besdb: %s\n", error.what());
    return exit_runtime;
  }
}
