// visual_retrieval: a terminal rendition of the paper's §5 "visualized
// retrieval system" — draws the symbolic pictures as ASCII art, runs a
// query, and shows the ranked matches side by side. Optionally writes PPM
// previews of the query and the top hit.
//
//   ./visual_retrieval --images 12 --seed 2 --ppm-dir /tmp/bestring_vis
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "db/query.hpp"
#include "imaging/pnm.hpp"
#include "imaging/render.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/query_gen.hpp"

namespace {

// Draws a symbolic picture on a character grid, y up. Each icon is outlined
// with its symbol's letter; later icons overwrite earlier ones.
std::vector<std::string> ascii_art(const bes::symbolic_image& scene,
                                   const bes::alphabet& names, int cols,
                                   int rows) {
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), '.'));
  const double sx = static_cast<double>(cols) / scene.width();
  const double sy = static_cast<double>(rows) / scene.height();
  for (const bes::icon& obj : scene.icons()) {
    const char letter = names.name_of(obj.symbol).front();
    const int c0 = static_cast<int>(obj.mbr.x.lo * sx);
    const int c1 = std::max(c0 + 1, static_cast<int>(obj.mbr.x.hi * sx));
    const int r0 = static_cast<int>(obj.mbr.y.lo * sy);
    const int r1 = std::max(r0 + 1, static_cast<int>(obj.mbr.y.hi * sy));
    for (int row = r0; row < r1 && row < rows; ++row) {
      for (int col = c0; col < c1 && col < cols; ++col) {
        // y up: row 0 of the grid is the TOP line -> invert.
        grid[static_cast<std::size_t>(rows - 1 - row)]
            [static_cast<std::size_t>(col)] = letter;
      }
    }
  }
  return grid;
}

void print_side_by_side(const std::vector<std::string>& left,
                        const std::vector<std::string>& right,
                        const std::string& left_title,
                        const std::string& right_title) {
  std::printf("%-*s   %s\n", static_cast<int>(left[0].size()),
              left_title.c_str(), right_title.c_str());
  for (std::size_t i = 0; i < left.size(); ++i) {
    std::printf("%s   %s\n", left[i].c_str(), right[i].c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bes;
  arg_parser args("Visualized retrieval demo (paper section 5).");
  args.add_int("images", 12, "database size");
  args.add_int("objects", 6, "icons per scene");
  args.add_int("seed", 2, "seed");
  args.add_string("ppm-dir", "", "write PPM previews here (optional)");
  try {
    if (!args.parse(argc, argv)) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  rng r(static_cast<std::uint64_t>(args.get_int("seed")));
  image_database db;
  scene_params params;
  params.width = 240;
  params.height = 160;
  params.object_count = static_cast<std::size_t>(args.get_int("objects"));
  params.max_extent = 48;
  params.symbol_pool = 6;
  std::vector<symbolic_image> scenes;
  const auto images = static_cast<std::size_t>(args.get_int("images"));
  for (std::size_t i = 0; i < images; ++i) {
    scenes.push_back(random_scene(params, r, db.symbols()));
    db.add("scene" + std::to_string(i), scenes.back());
  }

  distortion_params d;
  d.keep_fraction = 0.7;
  d.jitter = 6;
  alphabet scratch = db.symbols();
  const symbolic_image query = distort(scenes[0], d, r, scratch);

  query_options options;
  options.top_k = 3;
  const auto results = search(db, query, options);

  constexpr int cols = 36;
  constexpr int rows = 12;
  const auto query_art = ascii_art(query, db.symbols(), cols, rows);
  std::printf("query (%zu icons, distorted from scene0):\n\n", query.size());
  if (!results.empty()) {
    const symbolic_image& hit = db.record(results[0].id).image;
    const auto hit_art = ascii_art(hit, db.symbols(), cols, rows);
    print_side_by_side(query_art, hit_art, "QUERY",
                       "TOP HIT: " + db.record(results[0].id).name +
                           " (score " + fmt_double(results[0].score, 3) + ")");
  }

  std::printf("\nranked results:\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("  %zu. %-10s score=%.3f\n", i + 1,
                db.record(results[i].id).name.c_str(), results[i].score);
  }

  const std::string ppm_dir = args.get_string("ppm-dir");
  if (!ppm_dir.empty() && !results.empty()) {
    std::filesystem::create_directories(ppm_dir);
    write_ppm(std::filesystem::path(ppm_dir) / "query.ppm",
              render_preview(query));
    write_ppm(std::filesystem::path(ppm_dir) / "top_hit.ppm",
              render_preview(db.record(results[0].id).image));
    std::printf("\nwrote query.ppm and top_hit.ppm to %s\n", ppm_dir.c_str());
  }
  return 0;
}
