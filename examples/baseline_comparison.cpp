// baseline_comparison: one query, every similarity machine — the modified
// LCS (paper §4) against the 2-D string family's type-0/1/2 maximum-clique
// assessment (paper §2), with wall-clock costs. Also prints each model's
// representation of the same picture for a side-by-side feel of the
// formalisms.
//
//   ./baseline_comparison --objects 10
#include <chrono>
#include <cstdio>

#include "baselines/b_string.hpp"
#include "baselines/c_string.hpp"
#include "baselines/g_string.hpp"
#include "baselines/two_d_string.hpp"
#include "baselines/type_similarity.hpp"
#include "core/encoder.hpp"
#include "core/serializer.hpp"
#include "lcs/similarity.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/query_gen.hpp"

namespace {

template <typename F>
double micros(F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bes;
  arg_parser args("Every similarity model on one query/database pair.");
  args.add_int("objects", 10, "icons per scene");
  args.add_int("seed", 6, "seed");
  try {
    if (!args.parse(argc, argv)) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  alphabet names;
  rng r(static_cast<std::uint64_t>(args.get_int("seed")));
  scene_params params;
  params.width = 400;
  params.height = 400;
  params.object_count = static_cast<std::size_t>(args.get_int("objects"));
  params.symbol_pool = params.object_count;
  params.unique_symbols = true;
  params.max_extent = 80;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;
  d.keep_fraction = 0.7;
  d.jitter = 5;
  const symbolic_image query = distort(scene, d, r, names);

  // ---- the representations side by side (x-axis only, for brevity) ----
  std::printf("database image, four spatial string models (x-axis):\n");
  std::printf("  2-D string : %s\n",
              to_text(build_two_d_string(scene).u, names).c_str());
  std::printf("  2D B-string: %s\n",
              to_text(build_b_string(scene).x, names).c_str());
  std::printf("  2D BE-string: %s\n",
              to_text(encode(scene).x, names).c_str());
  std::printf("  G-string pieces: %zu, C-string pieces: %zu (both axes)\n\n",
              g_string_segment_count(scene), c_string_segment_count(scene));

  // ---- the assessments ----
  const be_string2d qs = encode(query);
  const be_string2d ds = encode(scene);
  text_table table({"assessment", "result", "time (us)"});

  double score = 0;
  double t = micros([&] { score = similarity(qs, ds); });
  table.add_row({"BE-LCS (query norm)", fmt_double(score, 3), fmt_double(t, 1)});

  t = micros([&] {
    score = similarity(qs, ds, {norm_kind::query, true});
  });
  table.add_row({"BE-LCS (exact DP)", fmt_double(score, 3), fmt_double(t, 1)});

  transform_match best;
  t = micros([&] { best = best_transform_similarity(qs, ds); });
  table.add_row({"BE-LCS best-of-8", fmt_double(best.score, 3), fmt_double(t, 1)});

  for (similarity_type level :
       {similarity_type::type0, similarity_type::type1,
        similarity_type::type2}) {
    type_similarity_result result;
    t = micros([&] { result = type_similarity(query, scene, {level, 0}); });
    table.add_row({std::string(to_string(level)) + " max clique",
                   std::to_string(result.matched_objects) + "/" +
                       std::to_string(query.size()) + " objects",
                   fmt_double(t, 1)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nThe clique rows also paid an O(m^2 n^2) graph build; the paper's\n"
      "argument is precisely that the LCS row scales as O(mn) instead.\n");
  return 0;
}
