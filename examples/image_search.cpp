// image_search: the full pipeline on rasters — generate synthetic scenes,
// render them to PGM images, extract icons by connected-component labeling,
// index them as 2D BE-strings, then answer a distorted query.
//
//   ./image_search --images 40 --objects 8 --keep 0.6 --out-dir /tmp/demo
#include <cstdio>
#include <filesystem>

#include "db/query.hpp"
#include "db/storage.hpp"
#include "imaging/extract.hpp"
#include "imaging/pnm.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/query_gen.hpp"

int main(int argc, char** argv) {
  using namespace bes;
  arg_parser args(
      "Raster-pipeline image search demo (render -> extract -> index -> "
      "query).");
  args.add_int("images", 40, "number of database images");
  args.add_int("objects", 8, "icons per image");
  args.add_double("keep", 0.6, "fraction of target icons kept in the query");
  args.add_int("jitter", 4, "max per-axis icon displacement in the query");
  args.add_int("top-k", 5, "results to print");
  args.add_int("seed", 1, "corpus seed");
  args.add_string("out-dir", "", "if set, write PGMs and the .besdb here");
  try {
    if (!args.parse(argc, argv)) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  const auto images = static_cast<std::size_t>(args.get_int("images"));
  rng r(static_cast<std::uint64_t>(args.get_int("seed")));
  scene_params params;
  params.width = 256;
  params.height = 256;
  params.object_count = static_cast<std::size_t>(args.get_int("objects"));
  params.max_extent = 48;
  params.disjoint = true;  // lossless extraction
  const std::string out_dir = args.get_string("out-dir");

  image_database db;
  std::vector<symbolic_image> originals;
  for (std::size_t i = 0; i < images; ++i) {
    const symbolic_image scene = random_scene(params, r, db.symbols());
    originals.push_back(scene);
    const rendered_scene rendered = render_scene(scene);
    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      write_pgm(std::filesystem::path(out_dir) /
                    ("scene" + std::to_string(i) + ".pgm"),
                rendered.raster);
    }
    // Everything the database sees came OUT of the pixels.
    db.add("scene" + std::to_string(i), extract_icons(rendered));
  }
  std::printf("indexed %zu images (%zu symbols) through the raster pipeline\n",
              db.size(), db.symbols().size());
  if (!out_dir.empty()) {
    save_database(db, std::filesystem::path(out_dir) / "corpus.besdb");
    std::printf("wrote PGMs and corpus.besdb to %s\n", out_dir.c_str());
  }

  // Build a distorted query from image 0: the user half-remembers a scene.
  distortion_params distortion;
  distortion.keep_fraction = args.get_double("keep");
  distortion.jitter = static_cast<int>(args.get_int("jitter"));
  alphabet scratch = db.symbols();
  const symbolic_image query = distort(originals[0], distortion, r, scratch);
  std::printf("\nquery: %zu of %zu icons of scene0, jitter +-%d px\n",
              query.size(), originals[0].size(), distortion.jitter);

  query_options options;
  options.top_k = static_cast<std::size_t>(args.get_int("top-k"));
  const auto results = search(db, query, options);

  text_table table({"rank", "image", "score"});
  int rank = 1;
  for (const query_result& result : results) {
    table.add_row({std::to_string(rank++), db.record(result.id).name,
                   fmt_double(result.score, 3)});
  }
  std::fputs(table.str().c_str(), stdout);
  if (!results.empty() && results[0].id == 0) {
    std::printf("-> the distorted query found its source image.\n");
  }

  // Serving-style batch: one distorted query per scene in a small sample,
  // answered in one search_batch call with the histogram pruner on. The
  // per-query stats show how much of each scan the admissible bounds and
  // the in-DP early-exit band saved.
  const std::size_t batch = std::min<std::size_t>(db.size(), 8);
  std::vector<symbolic_image> queries;
  for (std::size_t i = 0; i < batch; ++i) {
    queries.push_back(
        distort(originals[i], distortion, r, scratch));
  }
  query_options batched = options;
  batched.histogram_pruning = true;
  std::vector<search_stats> stats;
  const auto batch_results = search_batch(db, queries, batched, &stats);

  std::printf("\nbatch of %zu pruned queries (scored/pruned of scanned):\n",
              batch);
  text_table batch_table({"query", "top hit", "score", "scored", "pruned",
                          "band exits", "found self"});
  for (std::size_t i = 0; i < batch; ++i) {
    const auto& top = batch_results[i];
    const bool self = !top.empty() && top[0].id == static_cast<image_id>(i);
    batch_table.add_row(
        {std::to_string(i), top.empty() ? "-" : db.record(top[0].id).name,
         top.empty() ? "-" : fmt_double(top[0].score, 3),
         std::to_string(stats[i].scored), std::to_string(stats[i].pruned),
         std::to_string(stats[i].band_rejected), self ? "yes" : "no"});
  }
  std::fputs(batch_table.str().c_str(), stdout);
  return 0;
}
