// Quickstart: encode the paper's Figure-1 scene as a 2D BE-string, print it
// in both notations, and run the three similarity evaluations the paper
// introduces (full match, partial match, transformed match).
//
//   ./quickstart
#include <cstdio>
#include <string>

#include "core/encoder.hpp"
#include "core/serializer.hpp"
#include "core/transform.hpp"
#include "lcs/be_lcs.hpp"
#include "lcs/similarity.hpp"

int main() {
  using namespace bes;

  // 1. A symbolic picture: three icons A, B, C with their MBRs (paper Fig 1:
  //    gap before A on x, A's end meets C's begin, B's end meets C's begin
  //    on y).
  alphabet names;
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  const symbol_id c = names.intern("C");
  symbolic_image scene(12, 11);
  scene.add(a, rect::checked(2, 6, 3, 9));
  scene.add(b, rect::checked(4, 10, 1, 5));
  scene.add(c, rect::checked(6, 8, 5, 7));

  // All similarity calls below dispatch through the CPU-selected LCS kernel
  // (override with BES_LCS_KERNEL=scalar|bitparallel|avx2).
  std::printf("active LCS kernel: %s\n\n",
              std::string(active_lcs_kernel().name).c_str());

  // 2. Convert_2D_Be_String (paper Algorithm 1).
  const be_string2d strings = encode(scene);
  std::printf("2D BE-string of the Figure-1 scene\n");
  std::printf("  paper notation : %s\n", paper_style(strings, names).c_str());
  std::printf("  machine form   : %s\n", to_text(strings, names).c_str());

  // 3. Full-match query: the scene against itself.
  std::printf("\nsimilarity(scene, scene)              = %.3f\n",
              similarity(strings, strings));

  // 4. Partial query (paper §4): only A and C, B unknown.
  symbolic_image partial(12, 11);
  partial.add(a, rect::checked(2, 6, 3, 9));
  partial.add(c, rect::checked(6, 8, 5, 7));
  const be_string2d partial_strings = encode(partial);
  std::printf("similarity(partial{A,C}, scene)       = %.3f\n",
              similarity(partial_strings, strings));
  const auto lcs = be_lcs_string(partial_strings.x.span(), strings.x.span());
  std::printf("  x-axis LCS string: %s\n",
              paper_style(axis_string(lcs), names).c_str());

  // 5. Transformed query (paper conclusion): the 90-degree rotation is
  //    retrieved by string reversal, no operator conversion.
  const be_string2d rotated = apply(dihedral::rot90, strings);
  std::printf("similarity(query, rot90 db image)     = %.3f (plain)\n",
              similarity(strings, rotated));
  const transform_match best = best_transform_similarity(strings, rotated);
  std::printf("best-of-8 transform similarity        = %.3f via %s\n",
              best.score, std::string(to_string(best.transform)).c_str());
  return 0;
}
