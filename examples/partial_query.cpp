// partial_query: the paper's headline retrieval scenario — "the query
// targets and/or spatial relationships are not certain". Sweeps how much of
// a target scene the query keeps / perturbs and shows the BE-LCS score
// degrading smoothly while exact type-2 matching collapses.
//
//   ./partial_query --objects 10 --seed 3
#include <cstdio>

#include "baselines/type_similarity.hpp"
#include "core/encoder.hpp"
#include "lcs/similarity.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/query_gen.hpp"

int main(int argc, char** argv) {
  using namespace bes;
  arg_parser args("Partial/uncertain-query similarity demo.");
  args.add_int("objects", 10, "icons in the target scene");
  args.add_int("seed", 3, "scene seed");
  try {
    if (!args.parse(argc, argv)) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  alphabet names;
  rng r(static_cast<std::uint64_t>(args.get_int("seed")));
  scene_params params;
  params.width = 512;
  params.height = 512;
  params.object_count = static_cast<std::size_t>(args.get_int("objects"));
  params.symbol_pool = params.object_count;
  params.unique_symbols = true;  // the type-i baselines' home turf
  params.max_extent = 96;
  const symbolic_image scene = random_scene(params, r, names);
  const be_string2d scene_strings = encode(scene);

  std::printf("target scene: %zu uniquely-labeled icons\n\n", scene.size());
  text_table table({"query", "BE-LCS sim", "type-2 matched", "type-1 matched"});

  auto add_row = [&](const char* label, const symbolic_image& query) {
    const double lcs = similarity(encode(query), scene_strings);
    const auto t2 = type_similarity(query, scene, {similarity_type::type2, 0});
    const auto t1 = type_similarity(query, scene, {similarity_type::type1, 0});
    table.add_row({label, fmt_double(lcs, 3),
                   std::to_string(t2.matched_objects) + "/" +
                       std::to_string(query.size()),
                   std::to_string(t1.matched_objects) + "/" +
                       std::to_string(query.size())});
  };

  add_row("exact copy", scene);
  for (double keep : {0.8, 0.6, 0.4, 0.2}) {
    distortion_params d;
    d.keep_fraction = keep;
    char label[64];
    std::snprintf(label, sizeof(label), "keep %.0f%% of icons", keep * 100);
    add_row(label, distort(scene, d, r, names));
  }
  for (int jitter : {2, 8, 24}) {
    distortion_params d;
    d.jitter = jitter;
    char label[64];
    std::snprintf(label, sizeof(label), "jitter +-%dpx", jitter);
    add_row(label, distort(scene, d, r, names));
  }
  {
    distortion_params d;
    d.keep_fraction = 0.6;
    d.jitter = 8;
    d.decoys = 3;
    d.decoy_shape.max_extent = 64;
    add_row("60% + jitter + 3 decoys", distort(scene, d, r, names));
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nReading: the LCS column degrades smoothly with uncertainty; the\n"
      "type-2 column drops to small consistent cores as soon as geometry\n"
      "shifts — the problem the paper's evaluation method set out to fix.\n");
  return 0;
}
