// transformation_search: retrieval of rotated/reflected images by string
// reversal (paper §4/§5). Stores all 8 dihedral variants of a scene among
// distractors and shows plain vs transform-invariant retrieval.
//
//   ./transformation_search --objects 9 --distractors 20
#include <cstdio>

#include "db/query.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/scene_gen.hpp"

int main(int argc, char** argv) {
  using namespace bes;
  arg_parser args("Rotation/reflection-invariant retrieval demo.");
  args.add_int("objects", 9, "icons per scene");
  args.add_int("distractors", 20, "unrelated scenes in the database");
  args.add_int("seed", 11, "seed");
  try {
    if (!args.parse(argc, argv)) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  rng r(static_cast<std::uint64_t>(args.get_int("seed")));
  image_database db;
  scene_params params;
  params.width = 400;
  params.height = 400;
  params.object_count = static_cast<std::size_t>(args.get_int("objects"));
  params.max_extent = 64;
  const symbolic_image scene = random_scene(params, r, db.symbols());

  // Store the 8 linear transformations of the scene...
  for (dihedral t : all_dihedral) {
    db.add("variant:" + std::string(to_string(t)), apply(t, scene));
  }
  // ...among unrelated distractors.
  const auto distractors =
      static_cast<std::size_t>(args.get_int("distractors"));
  for (std::size_t i = 0; i < distractors; ++i) {
    db.add("distractor" + std::to_string(i),
           random_scene(params, r, db.symbols()));
  }
  std::printf("database: 8 transformed variants + %zu distractors\n\n",
              distractors);

  query_options plain;
  plain.top_k = 10;
  query_options invariant = plain;
  invariant.transform_invariant = true;

  const auto plain_results = search(db, scene, plain);
  const auto invariant_results = search(db, scene, invariant);

  std::printf("plain BE-LCS search (no reversal):\n");
  text_table t1({"rank", "image", "score"});
  for (std::size_t i = 0; i < plain_results.size() && i < 8; ++i) {
    t1.add_row({std::to_string(i + 1), db.record(plain_results[i].id).name,
                fmt_double(plain_results[i].score, 3)});
  }
  std::fputs(t1.str().c_str(), stdout);

  std::printf("\ntransform-invariant search (best of 8 string reversals):\n");
  text_table t2({"rank", "image", "score", "via transform"});
  for (std::size_t i = 0; i < invariant_results.size() && i < 8; ++i) {
    const query_result& result = invariant_results[i];
    t2.add_row({std::to_string(i + 1), db.record(result.id).name,
                fmt_double(result.score, 3),
                std::string(to_string(result.transform))});
  }
  std::fputs(t2.str().c_str(), stdout);

  std::size_t variants_at_top = 0;
  for (std::size_t i = 0; i < 8 && i < invariant_results.size(); ++i) {
    if (db.record(invariant_results[i].id).name.starts_with("variant:")) {
      ++variants_at_top;
    }
  }
  std::printf("\n%zu/8 top slots are the stored transformations.\n",
              variants_at_top);
  return 0;
}
