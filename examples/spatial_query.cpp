// spatial_query: the paper's introduction scenario as an executable query
// language — "find all images which icon A locates at the left side and
// icon B locates at the right" — plus R-tree window filtering (the paper's
// related-work category 2: indexing by size and location).
//
//   ./spatial_query "A left-of B & C above A"
//   ./spatial_query --images 30 "table contains lamp"
#include <cstdio>

#include "db/spatial_index.hpp"
#include "reasoning/query_lang.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/scene_gen.hpp"

int main(int argc, char** argv) {
  using namespace bes;
  arg_parser args(
      "Structured spatial queries over an image database.\n"
      "Positional argument: a query like \"A left-of B & C above A\".\n"
      "Predicates: left-of right-of above below inside contains overlaps\n"
      "            disjoint-from meets-x meets-y same-place");
  args.add_int("images", 25, "database size");
  args.add_int("objects", 6, "icons per scene");
  args.add_int("seed", 9, "seed");
  args.add_bool("full-only", false, "print only fully matching images");
  try {
    if (!args.parse(argc, argv)) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  // Build a corpus over a small vocabulary so queries have hits.
  image_database db;
  rng r(static_cast<std::uint64_t>(args.get_int("seed")));
  scene_params params;
  params.width = 200;
  params.height = 200;
  params.object_count = static_cast<std::size_t>(args.get_int("objects"));
  params.symbol_pool = 4;  // S0..S3
  params.max_extent = 60;
  const auto images = static_cast<std::size_t>(args.get_int("images"));
  for (std::size_t i = 0; i < images; ++i) {
    db.add("scene" + std::to_string(i), random_scene(params, r, db.symbols()));
  }

  const std::string query_text = args.positional().empty()
                                     ? "S0 left-of S1 & S2 above S0"
                                     : args.positional().front();
  spatial_query query;
  try {
    query = parse_query(query_text);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "query error: %s\n", error.what());
    return 1;
  }
  std::printf("query: %s   (%zu clauses over symbols", query_text.c_str(),
              query.clauses.size());
  for (const std::string& v : query.variables()) std::printf(" %s", v.c_str());
  std::printf(")\n\n");

  const auto ranked = search_structured(db, query, args.get_bool("full-only"));
  text_table table({"image", "satisfied", "of"});
  std::size_t shown = 0;
  for (const structured_result& result : ranked) {
    if (shown++ == 10) break;
    table.add_row({db.record(result.id).name, std::to_string(result.satisfied),
                   std::to_string(result.total)});
  }
  std::fputs(table.str().c_str(), stdout);

  // Bonus: the R-tree access path. Which images place ANY icon in the
  // upper-left quadrant?
  const spatial_index index(db);
  const rect quadrant = rect::checked(0, 100, 100, 200);
  const auto in_region = index.images_overlapping(quadrant);
  std::printf(
      "\nR-tree window query (icon in upper-left quadrant): %zu of %zu "
      "images, tree height %d over %zu icons\n",
      in_region.size(), db.size(), index.tree().height(),
      index.indexed_icons());
  return 0;
}
