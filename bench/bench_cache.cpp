// E11 — the epoch-aware result cache under zipfian traffic (ISSUE 11).
//
// Claim: skewed retrieval traffic (a hot head of repeated queries) makes a
// result cache pay for itself: at zipf s = 1.2 the cached path answers the
// stream with a >= 60% hit rate and >= 5x lower mean latency than uncached
// search, because hits skip the LCS scoring pass entirely. Under concurrent
// ingest the cache does not fall back to full scans: delta refresh rescores
// only the records appended since the entry's watermark, so the work per
// refresh is O(appended), not O(corpus).
//
// The sweep crosses zipf skew s in {0, 0.8, 1.2} (0 = uniform traffic, the
// cache's worst case) with a mutation rate (appends interleaved into the
// query stream); both cached and uncached runs replay the identical stream
// against identically mutating databases.
#include "bench_common.hpp"

#include "db/query.hpp"
#include "db/result_cache.hpp"
#include "workload/zipf.hpp"

namespace bes {
namespace {

using benchsupport::make_scene;
using benchsupport::print_header;

// The corpus every run rebuilds from scratch (identical scenes each time, so
// cached and uncached runs see the same database at every request index).
image_database build_corpus(std::size_t n) {
  image_database db;
  for (std::size_t i = 0; i < n; ++i) {
    db.add("scene" + std::to_string(i),
           make_scene(i + 1, 8, db.symbols(), 256));
  }
  return db;
}

struct run_result {
  double mean_ms = 0.0;
  std::uint64_t lcs_scored = 0;   // records scored (LCS runs) over the stream
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t delta_refreshes = 0;
  std::uint64_t delta_rescored = 0;
  std::uint64_t appended = 0;     // mutations applied during the run
};

// Replays `stream` against a fresh corpus, appending one new scene every
// `mutate_every` requests (0 = never). `cache` null = the uncached baseline.
run_result replay(const query_stream& stream, std::size_t corpus_size,
                  std::size_t mutate_every, const query_options& options,
                  result_cache* cache) {
  image_database db = build_corpus(corpus_size);
  run_result out;
  double total_s = 0.0;
  std::size_t mutation_seed = corpus_size;
  for (std::size_t i = 0; i < stream.order.size(); ++i) {
    if (mutate_every != 0 && i != 0 && i % mutate_every == 0) {
      db.add("live" + std::to_string(mutation_seed),
             make_scene(1000000 + mutation_seed, 8, db.symbols(), 256));
      ++mutation_seed;
      ++out.appended;
    }
    const symbolic_image& query = stream.pool[stream.order[i]];
    search_stats stats;
    total_s += benchsupport::time_seconds([&] {
      if (cache != nullptr) {
        benchmark::DoNotOptimize(search_cached(db, *cache, query, options,
                                               &stats));
      } else {
        benchmark::DoNotOptimize(search(db, query, options, &stats));
      }
    });
    out.lcs_scored += stats.scored;
    out.hits += stats.cache_hits;
    out.misses += stats.cache_misses;
    out.delta_refreshes += stats.cache_delta_refreshes;
    out.delta_rescored += stats.cache_delta_rescored;
  }
  out.mean_ms = 1e3 * total_s / static_cast<double>(stream.order.size());
  return out;
}

void print_cache_table() {
  print_header(
      "E11: result cache vs uncached search under zipfian query traffic",
      ">= 60% hit rate and >= 5x mean-latency reduction at s = 1.2; delta "
      "refresh rescores O(appended) records, never the corpus");
  text_table table({"skew", "mut/req", "uncached-ms", "cached-ms", "speedup",
                    "hit%", "miss", "delta", "lcs-runs-un", "lcs-runs-c",
                    "rescored", "appended"});
  const std::size_t corpus = benchsupport::smoke_cap<std::size_t>(512, 48);
  const std::size_t pool = benchsupport::smoke_cap<std::size_t>(64, 12);
  const std::size_t length = benchsupport::smoke_cap<std::size_t>(512, 48);
  query_options options;
  options.top_k = 5;

  image_database targets = build_corpus(corpus);
  std::vector<symbolic_image> scenes;
  scenes.reserve(targets.size());
  for (const db_record& rec : targets.records()) scenes.push_back(rec.image);

  for (double skew : {0.0, 0.8, 1.2}) {
    for (std::size_t mutate_every :
         {std::size_t{0}, benchsupport::smoke_cap<std::size_t>(64, 16)}) {
      alphabet pool_names = targets.symbols();
      query_stream_params params;
      params.pool_size = pool;
      params.length = length;
      params.skew = skew;
      params.seed = 11;
      params.distortion.keep_fraction = 0.8;
      params.distortion.jitter = 2;
      const query_stream stream =
          make_query_stream(scenes, pool_names, params);

      const run_result uncached =
          replay(stream, corpus, mutate_every, options, nullptr);
      result_cache cache({.capacity = 1024});
      const run_result cached =
          replay(stream, corpus, mutate_every, options, &cache);

      const double requests = static_cast<double>(stream.order.size());
      table.add_row(
          {fmt_double(skew, 1),
           mutate_every == 0 ? "0" : "1/" + std::to_string(mutate_every),
           fmt_double(uncached.mean_ms, 3), fmt_double(cached.mean_ms, 3),
           fmt_double(uncached.mean_ms / std::max(cached.mean_ms, 1e-9), 2),
           fmt_double(100.0 * static_cast<double>(cached.hits) / requests, 1),
           std::to_string(cached.misses), std::to_string(cached.delta_refreshes),
           std::to_string(uncached.lcs_scored),
           std::to_string(cached.lcs_scored),
           std::to_string(cached.delta_rescored),
           std::to_string(cached.appended)});
    }
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\n'rescored' counts records scored by delta refreshes only; with\n"
      "'appended' mutations of one record each, rescored <= delta * appended\n"
      "proves refresh work scales with the appended suffix, not the corpus.\n");
}

void BM_CachedSearchHit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  image_database db = build_corpus(n);
  alphabet names = db.symbols();
  const symbolic_image query = make_scene(3, 8, names, 256);
  query_options options;
  options.top_k = 5;
  result_cache cache({.capacity = 64});
  benchmark::DoNotOptimize(search_cached(db, cache, query, options));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search_cached(db, cache, query, options));
  }
}
BENCHMARK(BM_CachedSearchHit)->RangeMultiplier(4)->Range(64, 4096);

void BM_UncachedSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  image_database db = build_corpus(n);
  alphabet names = db.symbols();
  const symbolic_image query = make_scene(3, 8, names, 256);
  query_options options;
  options.top_k = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search(db, query, options));
  }
}
BENCHMARK(BM_UncachedSearch)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_cache_table();
  return bes::benchsupport::run_registered(argc, argv);
}
