// E10 — the network query service: scatter/gather over loopback sockets vs
// the in-process sharded scan it wraps.
//
// The coordinator's contract is "invisible in the answer"; this bench pins
// down what the wire costs. Three measurements per row:
//   - in-process: sharded_database::search, the floor the service sits on;
//   - loopback: coordinator::search over a serve fleet on 127.0.0.1, i.e.
//     framing + CRC + scatter + gather on top of the same scan;
//   - loopback, no gossip: the same fleet with THRESHOLD frames disabled,
//     so the table shows what the gossiped global floor saves in LCS runs.
#include "bench_common.hpp"

#include "core/encoder.hpp"
#include "db/query.hpp"
#include "db/shard.hpp"
#include "net/loopback.hpp"
#include "workload/query_gen.hpp"

namespace bes {
namespace {

using benchsupport::print_header;
using benchsupport::time_per_call;

image_database build_db(std::size_t images) {
  image_database db;
  rng r(20010402);
  scene_params params;
  params.object_count = 8;
  params.symbol_pool = 40;
  for (std::size_t i = 0; i < images; ++i) {
    db.add("scene" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  return db;
}

symbolic_image make_query(const image_database& db) {
  rng r(5);
  alphabet scratch = db.symbols();
  distortion_params d;
  d.keep_fraction = 0.6;
  return distort(db.record(0).image, d, r, scratch);
}

void print_scatter_table() {
  print_header("E10a: loopback scatter/gather vs in-process sharded scan",
               "the wire adds fixed per-query overhead, not a scan slowdown; "
               "threshold gossip keeps remote LCS-run counts near the "
               "in-process shared-top-k scan");
  text_table table({"images", "shards", "in-proc (ms)", "loopback (ms)",
                    "no-gossip (ms)", "LCS in-proc", "LCS gossip",
                    "LCS no-gossip"});
  for (std::size_t images : benchsupport::smoke_sweep({400u, 1600u}, 100u)) {
    const image_database db = build_db(images);
    const symbolic_image query = make_query(db);
    const be_string2d strings = encode(query);
    const std::vector<symbol_id> symbols = distinct_symbols(query);

    query_options options;
    options.use_index = false;
    options.histogram_pruning = true;
    options.top_k = 10;

    for (std::size_t shards : {1u, 4u, 8u}) {
      const sharded_database sharded = make_sharded(db, shards);

      search_stats local_stats;
      const double t_local = 1e3 * time_per_call([&] {
        benchmark::DoNotOptimize(
            search(sharded, strings, symbols, options, &local_stats));
      });

      net::coordinator_options gossip_on;
      net::coordinator_options gossip_off;
      gossip_off.gossip = false;

      net::loopback_cluster with(sharded, {}, gossip_on);
      net::remote_result remote;
      const double t_remote = 1e3 * time_per_call([&] {
        remote = with.front().search(strings, symbols, options);
        benchmark::DoNotOptimize(remote);
      });

      net::loopback_cluster without(sharded, {}, gossip_off);
      net::remote_result control;
      const double t_control = 1e3 * time_per_call([&] {
        control = without.front().search(strings, symbols, options);
        benchmark::DoNotOptimize(control);
      });

      table.add_row({std::to_string(images), std::to_string(shards),
                     fmt_double(t_local, 2), fmt_double(t_remote, 2),
                     fmt_double(t_control, 2),
                     std::to_string(local_stats.scored),
                     std::to_string(remote.stats.scored),
                     std::to_string(control.stats.scored)});
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_batch_table() {
  print_header("E10b: batched scatter amortizes the round trip",
               "search_batch ships the whole query set in one frame per "
               "shard, so per-query wire overhead shrinks with batch size");
  text_table table({"images", "shards", "batch", "loop (ms/q)",
                    "batch (ms/q)"});
  const std::size_t images = benchsupport::smoke_cap<std::size_t>(800, 100);
  const image_database db = build_db(images);
  const sharded_database sharded = make_sharded(db, 4);

  rng r(7);
  alphabet scratch = db.symbols();
  distortion_params d;
  d.keep_fraction = 0.7;
  query_options options;
  options.use_index = false;
  options.histogram_pruning = true;
  options.top_k = 10;

  net::loopback_cluster cluster(sharded);
  for (std::size_t batch : benchsupport::smoke_sweep({4u, 16u}, 4u)) {
    std::vector<be_string2d> strings;
    std::vector<std::vector<symbol_id>> symbols;
    for (std::size_t i = 0; i < batch; ++i) {
      const symbolic_image q =
          distort(db.record(static_cast<image_id>(i % db.size())).image, d, r,
                  scratch);
      strings.push_back(encode(q));
      symbols.push_back(distinct_symbols(q));
    }

    const double t_loop = time_per_call([&] {
      for (std::size_t i = 0; i < batch; ++i) {
        benchmark::DoNotOptimize(
            cluster.front().search(strings[i], symbols[i], options));
      }
    });
    const double t_batch = time_per_call([&] {
      benchmark::DoNotOptimize(
          cluster.front().search_batch(strings, symbols, options));
    });
    const auto per_query = [&](double total_s) {
      return fmt_double(1e3 * total_s / static_cast<double>(batch), 2);
    };
    table.add_row({std::to_string(images), "4", std::to_string(batch),
                   per_query(t_loop), per_query(t_batch)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_LoopbackSearch(benchmark::State& state) {
  const image_database db = build_db(400);
  const sharded_database sharded =
      make_sharded(db, static_cast<std::size_t>(state.range(0)));
  const symbolic_image query = make_query(db);
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  query_options options;
  options.use_index = false;
  options.histogram_pruning = true;
  options.top_k = 10;
  net::loopback_cluster cluster(sharded);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.front().search(strings, symbols, options));
  }
}
BENCHMARK(BM_LoopbackSearch)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_scatter_table();
  bes::print_batch_table();
  return bes::benchsupport::run_registered(argc, argv);
}
