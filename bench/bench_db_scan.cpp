// E9 — the demonstration retrieval system at database scale (paper §5).
//
// End-to-end: corpora built through the raster pipeline, scan throughput
// with/without the inverted symbol index, serial vs parallel scoring, and
// transform-invariant mode. The paper's demo system is interactive; the
// claim reproduced here is that a full-database LCS scan is cheap enough to
// serve queries at interactive latency for thousands of images.
#include "bench_common.hpp"

#include "db/access_path.hpp"
#include "db/hybrid_index.hpp"
#include "db/planner.hpp"
#include "db/query.hpp"
#include "db/scan.hpp"
#include "db/shard.hpp"
#include "db/spatial_index.hpp"
#include "imaging/extract.hpp"
#include "util/parallel.hpp"
#include "workload/query_gen.hpp"

namespace bes {
namespace {

using benchsupport::print_header;
using benchsupport::time_per_call;

image_database build_db(std::size_t images, std::size_t objects,
                        std::size_t pool, bool through_raster = false) {
  image_database db;
  rng r(20010402);
  scene_params params;
  params.width = 256;
  params.height = 256;
  params.object_count = objects;
  params.max_extent = 48;
  params.symbol_pool = pool;
  if (through_raster) params.disjoint = true;
  for (std::size_t i = 0; i < images; ++i) {
    symbolic_image scene = random_scene(params, r, db.symbols());
    if (through_raster) {
      scene = extract_icons(render_scene(scene));
    }
    db.add("scene" + std::to_string(i), std::move(scene));
  }
  return db;
}

void print_scan_table() {
  print_header("E9a: full-scan query latency vs database size",
               "LCS scans stay interactive; the symbol index, the histogram "
               "pruner and threads shave the scan");
  text_table table({"images", "serial (ms)", "indexed (ms)", "pruned (ms)",
                    "LCS runs", "4 threads (ms)", "best-of-8 (ms)"});
  for (std::size_t images : benchsupport::smoke_sweep({100u, 400u, 1600u}, 100u)) {
    image_database db = build_db(images, 8, 40);
    rng r(5);
    alphabet scratch = db.symbols();
    distortion_params d;
    d.keep_fraction = 0.6;
    const symbolic_image query =
        distort(db.record(0).image, d, r, scratch);

    query_options serial;
    serial.use_index = false;
    query_options indexed;
    query_options pruned;
    pruned.use_index = false;
    pruned.histogram_pruning = true;
    query_options threaded;
    threaded.use_index = false;
    threaded.threads = 4;
    query_options invariant;
    invariant.use_index = false;
    invariant.transform_invariant = true;

    const double t_serial =
        1e3 * time_per_call([&] { benchmark::DoNotOptimize(search(db, query, serial)); });
    const double t_indexed =
        1e3 * time_per_call([&] { benchmark::DoNotOptimize(search(db, query, indexed)); });
    search_stats stats;
    const double t_pruned = 1e3 * time_per_call([&] {
      benchmark::DoNotOptimize(search(db, query, pruned, &stats));
    });
    const double t_threads =
        1e3 * time_per_call([&] { benchmark::DoNotOptimize(search(db, query, threaded)); });
    const double t_invariant =
        1e3 * time_per_call([&] { benchmark::DoNotOptimize(search(db, query, invariant)); });
    table.add_row({std::to_string(images), fmt_double(t_serial, 2),
                   fmt_double(t_indexed, 2), fmt_double(t_pruned, 2),
                   std::to_string(stats.scored) + "/" +
                       std::to_string(stats.scanned),
                   fmt_double(t_threads, 2), fmt_double(t_invariant, 2)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_batch_table() {
  print_header("E9c: batch + threshold scan variants",
               "search_batch amortizes per-query precomputation; the pruner "
               "with a min_score floor and threads compounds on top");
  text_table table({"images", "queries", "loop (ms/q)", "batch (ms/q)",
                    "batch+prune (ms/q)", "+min_score .5", "+4 threads",
                    "LCS runs"});
  for (std::size_t images : benchsupport::smoke_sweep({200u, 800u}, 100u)) {
    image_database db = build_db(images, 8, 40);
    const std::size_t batch = benchsupport::smoke_cap<std::size_t>(16, 4);
    std::vector<symbolic_image> queries;
    rng r(7);
    distortion_params d;
    d.keep_fraction = 0.7;
    alphabet scratch = db.symbols();
    for (std::size_t i = 0; i < batch; ++i) {
      queries.push_back(
          distort(db.record(static_cast<image_id>(i % db.size())).image, d, r,
                  scratch));
    }
    const auto per_query = [&](double total_s) {
      return fmt_double(1e3 * total_s / static_cast<double>(batch), 2);
    };

    query_options plain;
    plain.use_index = false;
    const double t_loop = time_per_call([&] {
      for (const symbolic_image& q : queries) {
        benchmark::DoNotOptimize(search(db, q, plain));
      }
    });
    const double t_batch = time_per_call(
        [&] { benchmark::DoNotOptimize(search_batch(db, queries, plain)); });

    query_options pruned = plain;
    pruned.histogram_pruning = true;
    const double t_pruned = time_per_call(
        [&] { benchmark::DoNotOptimize(search_batch(db, queries, pruned)); });

    query_options floored = pruned;
    floored.min_score = 0.5;
    std::vector<search_stats> stats;
    const double t_floored = time_per_call([&] {
      benchmark::DoNotOptimize(search_batch(db, queries, floored, &stats));
    });

    query_options threaded = floored;
    threaded.threads = 4;
    const double t_threads = time_per_call([&] {
      benchmark::DoNotOptimize(search_batch(db, queries, threaded));
    });

    std::size_t scored = 0;
    std::size_t scanned = 0;
    for (const search_stats& s : stats) {
      scored += s.scored;
      scanned += s.scanned;
    }
    table.add_row({std::to_string(images), std::to_string(batch),
                   per_query(t_loop), per_query(t_batch), per_query(t_pruned),
                   per_query(t_floored), per_query(t_threads),
                   std::to_string(scored) + "/" + std::to_string(scanned)});
  }
  std::fputs(table.str().c_str(), stdout);
}

// E9d of ISSUE 5: shard-per-core fan-out. Every shard scan inserts into
// ONE shared top-k whose threshold reads are a single atomic load, so the
// sharded scan prunes against the running GLOBAL k-th score and returns
// results identical to the flat scan.
//
// Two measurements per row:
//   - wall t8: the fan-out as-is on THIS machine's cores (on a box with
//     fewer cores than threads the OS serializes the workers, so this
//     column understates the fan-out exactly as it overstates the flat
//     scan's 8 threads);
//   - critical path: the slowest single shard scan, measured by running
//     the same fan-out one shard at a time — the wall time a machine with
//     one core per shard would see. This is the shard-per-core scaling
//     claim: >= 2x at 8 shards vs the single-shard scan.
void print_shard_table() {
  print_header("E9d: sharded fan-out scan vs single-shard, same thread budget",
               "shards share one running top-k through an atomic threshold; "
               "critical path = slowest shard = fan-out wall clock at one "
               "core per shard (>= 2x at 8 shards)");
  text_table table({"images", "shards", "wall exh t8 (ms)", "wall pruned t8 (ms)",
                    "LCS runs", "critical path (ms)", "crit speedup vs s1"});
  for (std::size_t images :
       benchsupport::smoke_sweep({400u, 1600u}, 100u)) {
    image_database db = build_db(images, 8, 40);
    rng r(5);
    alphabet scratch = db.symbols();
    distortion_params d;
    d.keep_fraction = 0.6;
    const symbolic_image query = distort(db.record(0).image, d, r, scratch);
    const be_string2d strings = encode(query);
    const be_histogram2d histograms = make_histograms(strings);

    query_options exhaustive;
    exhaustive.use_index = false;
    exhaustive.threads = 8;
    query_options pruned = exhaustive;
    pruned.histogram_pruning = true;

    double critical_s1 = 0.0;
    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
      const sharded_database sharded = make_sharded(db, shards);
      const double t_exhaustive = 1e3 * time_per_call([&] {
        benchmark::DoNotOptimize(search(sharded, query, exhaustive));
      });
      search_stats stats;
      const double t_pruned = 1e3 * time_per_call([&] {
        benchmark::DoNotOptimize(search(sharded, query, pruned, &stats));
      });

      // Critical path: each shard's pruned scan timed alone with a FRESH
      // top-k (no help from the other shards' thresholds), so the max is a
      // conservative upper bound on the wall clock of a one-core-per-shard
      // run — a live fan-out's shared threshold is only ever tighter.
      query_options serial = pruned;
      serial.threads = 1;
      double critical = 0.0;
      for (std::size_t s = 0; s < shards; ++s) {
        std::vector<image_id> ids(sharded.shard_db(s).size());
        for (std::size_t i = 0; i < ids.size(); ++i) {
          ids[i] = static_cast<image_id>(i);
        }
        const double t = 1e3 * time_per_call([&] {
          detail::shared_topk top(serial.top_k, serial.min_score);
          benchmark::DoNotOptimize(detail::scan_shard(
              sharded.shard_db(s), strings, ids,
              detail::id_map{.chunked = &sharded.shard_global_ids(s)},
              &histograms, nullptr, serial, &top, nullptr));
        });
        critical = std::max(critical, t);
      }
      if (shards == 1) critical_s1 = critical;
      table.add_row({std::to_string(images), std::to_string(shards),
                     fmt_double(t_exhaustive, 2), fmt_double(t_pruned, 2),
                     std::to_string(stats.scored) + "/" +
                         std::to_string(stats.scanned),
                     fmt_double(critical, 2),
                     fmt_double(critical_s1 / critical, 2) + "x"});
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

// E9e of ISSUE 7: candidate generation through the access paths. The
// combined prefilter materializes the index union and the window hits and
// intersects them after the fact; the fused hybrid traversal produces the
// SAME candidate set from one R-tree walk whose nodes carry symbol
// signatures. The planner picks whichever path its cost model says is
// cheapest end to end; its wall clock is compared against the exhaustive
// scan it replaces.
void print_planner_table() {
  print_header("E9e: combined vs fused-hybrid vs cost-based planner",
               "same candidate set, one traversal instead of two "
               "materializations; the planner's end-to-end pick vs the "
               "exhaustive scan");
  text_table table({"images", "pad", "cands comb", "cands hyb",
                    "gen comb (ms)", "gen hyb (ms)", "plan",
                    "e2e planned (ms)", "e2e exhaustive (ms)"});
  for (std::size_t images : benchsupport::smoke_sweep({400u, 1600u}, 100u)) {
    image_database db = build_db(images, 8, 40);
    const spatial_index spatial(db);
    const hybrid_index hybrid(db);
    rng r(5);
    alphabet scratch = db.symbols();
    distortion_params d;
    d.keep_fraction = 0.6;
    const symbolic_image query = distort(db.record(0).image, d, r, scratch);
    const std::vector<symbol_id> symbols = distinct_symbols(query);
    const int pad = adaptive_pad(query);

    const access_path_context actx{&db, &spatial, &hybrid};
    const auto combined = make_access_path(access_path_kind::combined, actx);
    const auto fused = make_access_path(access_path_kind::hybrid, actx);
    const path_probe probe{&query, symbols, pad};
    const std::size_t cands_comb = combined->generate(probe).size();
    const std::size_t cands_hyb = fused->generate(probe).size();
    const double t_comb = 1e3 * time_per_call([&] {
      benchmark::DoNotOptimize(combined->generate(probe));
    });
    const double t_hyb = 1e3 * time_per_call([&] {
      benchmark::DoNotOptimize(fused->generate(probe));
    });

    const planner_context ctx{&db, &spatial, &hybrid};
    query_options planned;
    planned.top_k = 10;
    planned.histogram_pruning = true;
    const access_plan plan = plan_query(ctx, query, symbols, planned);
    const double t_planned = 1e3 * time_per_call([&] {
      benchmark::DoNotOptimize(search_planned(ctx, query, planned));
    });
    query_options exhaustive;
    exhaustive.use_index = false;
    exhaustive.top_k = 10;
    const double t_exhaustive = 1e3 * time_per_call([&] {
      benchmark::DoNotOptimize(search(db, query, exhaustive));
    });

    table.add_row({std::to_string(images), std::to_string(pad),
                   std::to_string(cands_comb), std::to_string(cands_hyb),
                   fmt_double(t_comb, 3), fmt_double(t_hyb, 3),
                   std::string(to_string(plan.path)),
                   fmt_double(t_planned, 2), fmt_double(t_exhaustive, 2)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_index_selectivity_table() {
  print_header("E9b: inverted-index candidate selectivity",
               "images sharing no query symbol are skipped outright");
  text_table table({"symbol pool", "db images", "candidates for 5-symbol query"});
  for (std::size_t pool : benchsupport::smoke_sweep({10u, 40u, 160u}, 160u)) {
    image_database db = build_db(benchsupport::smoke_cap<std::size_t>(400, 50), 5, pool);
    const auto candidates = db.candidates(db.record(0).image);
    table.add_row({std::to_string(pool), std::to_string(db.size()),
                   std::to_string(candidates.size())});
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_SearchSerial(benchmark::State& state) {
  image_database db = build_db(static_cast<std::size_t>(state.range(0)), 8, 40);
  const symbolic_image& query = db.record(1).image;
  query_options options;
  options.use_index = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search(db, query, options));
  }
  state.counters["images_per_s"] = benchmark::Counter(
      static_cast<double>(db.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SearchSerial)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_SearchParallel(benchmark::State& state) {
  image_database db = build_db(800, 8, 40);
  const symbolic_image& query = db.record(1).image;
  query_options options;
  options.use_index = false;
  options.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search(db, query, options));
  }
}
BENCHMARK(BM_SearchParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_RasterPipelineIngest(benchmark::State& state) {
  // Cost of the full front half: render + label + extract + encode + insert.
  rng r(9);
  alphabet names;
  scene_params params;
  params.width = 256;
  params.height = 256;
  params.object_count = 8;
  params.max_extent = 48;
  params.disjoint = true;
  const symbolic_image scene = random_scene(params, r, names);
  for (auto _ : state) {
    image_database db;
    db.symbols() = names;
    db.add("one", extract_icons(render_scene(scene)));
    benchmark::DoNotOptimize(db.size());
  }
}
BENCHMARK(BM_RasterPipelineIngest)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_scan_table();
  bes::print_batch_table();
  bes::print_shard_table();
  bes::print_planner_table();
  bes::print_index_selectivity_table();
  return bes::benchsupport::run_registered(argc, argv);
}
