// E8 — incremental insert/delete vs full reconversion (paper §3.2, last
// paragraph).
//
// Claim: saving the 2D BE-string together with its MBR coordinates lets a
// new object be placed by binary search (and a dropped object by a
// sequential scan), instead of re-running Convert_2D_Be_String over all n
// objects. The advantage grows with n.
#include "bench_common.hpp"

#include "core/editor.hpp"
#include "core/encoder.hpp"

namespace bes {
namespace {

using benchsupport::make_scene;
using benchsupport::print_header;
using benchsupport::time_per_call;

void print_cost_table() {
  print_header("E8: maintaining the string under object insertion/deletion",
               "incremental maintenance beats full re-encode increasingly "
               "with n (binary-search locate + ordered splice)");
  text_table table({"n", "editor insert+erase (us)", "full re-encode (us)",
                    "speedup"});
  for (std::size_t n : benchsupport::smoke_sweep({64u, 256u, 1024u, 4096u, 16384u}, 256u)) {
    alphabet names;
    const symbolic_image scene = make_scene(n, n, names, 1 << 16);
    be_editor editor(scene);
    const rect probe = rect::checked(10, 25, 10, 25);
    const double incremental_us = 1e6 * time_per_call([&] {
      const instance_id id = editor.insert(0, probe);
      editor.erase(id);
    });
    symbolic_image copy = scene;
    const double full_us = 1e6 * time_per_call([&] {
      copy.add(0, probe);
      benchmark::DoNotOptimize(encode(copy));
      copy.remove(copy.size() - 1);
    });
    table.add_row({std::to_string(n), fmt_double(incremental_us, 2),
                   fmt_double(full_us, 2),
                   fmt_double(full_us / incremental_us, 1) + "x"});
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_EditorInsertErase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  be_editor editor(make_scene(1, n, names, 1 << 16));
  const rect probe = rect::checked(100, 200, 100, 200);
  for (auto _ : state) {
    const instance_id id = editor.insert(0, probe);
    editor.erase(id);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EditorInsertErase)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_FullReencodeAfterInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  symbolic_image scene = make_scene(2, n, names, 1 << 16);
  const rect probe = rect::checked(100, 200, 100, 200);
  for (auto _ : state) {
    scene.add(0, probe);
    benchmark::DoNotOptimize(encode(scene));
    scene.remove(scene.size() - 1);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullReencodeAfterInsert)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity();

void BM_EditorRender(benchmark::State& state) {
  // Rendering the tokens after edits is the O(n) part clients pay per read.
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_editor editor(make_scene(3, n, names, 1 << 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(editor.strings());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EditorRender)->RangeMultiplier(4)->Range(64, 16384)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_cost_table();
  return bes::benchsupport::run_registered(argc, argv);
}
