// E6 — retrieval quality under partial / uncertain queries (paper §1, §4).
//
// Claim: the LCS evaluation retrieves images even when only PART of the
// query objects and/or spatial relationships match ("It resolves the
// problems that the query targets and/or spatial relationships are not
// certain"), while the type-i assessment only counts exactly consistent
// sub-pictures. We measure precision@k / MRR / nDCG over the SAME seeded
// corpus distribution the eval regression gate uses (src/eval/corpus.hpp:
// base scenes stored next to graded-distortion families as confusers), so
// E6a numbers and eval/baseline.json track one distribution.
#include "bench_common.hpp"

#include "baselines/type_similarity.hpp"
#include "db/query.hpp"
#include "eval/corpus.hpp"
#include "metrics/retrieval.hpp"
#include "workload/query_gen.hpp"

namespace bes {
namespace {

using benchsupport::print_header;

eval_corpus build_corpus(std::size_t bases, std::size_t objects, bool unique) {
  eval_corpus_params params;
  params.base_scenes = bases;
  params.objects = objects;
  params.domain = 512;
  params.unique_symbols = unique;
  params.symbol_pool = unique ? objects : 10;
  params.queries_per_base = 1;
  return build_eval_corpus(params, 2);
}

struct quality {
  double p_at_1 = 0;
  double mrr = 0;
  double ndcg10 = 0;
};

// Scores `rank` over one distorted query per base scene (the distortion
// re-seeded per query via derive_seed). Only the true base counts as
// relevant; its stored family members are confusers.
template <typename RankFn>
quality evaluate(const eval_corpus& c, const distortion_params& distortion,
                 std::size_t queries, RankFn&& rank) {
  quality q;
  alphabet scratch = c.db.symbols();  // decoys may mint new symbols
  for (std::size_t t = 0; t < queries; ++t) {
    const std::size_t base = t % c.base_ids.size();
    distortion_params seeded = distortion;
    seeded.seed = derive_seed(0xE6, t);
    const symbolic_image query =
        distort(c.db.record(c.base_ids[base]).image, seeded, scratch);
    const std::vector<std::uint32_t> ranked = rank(query);
    const std::vector<std::uint32_t> relevant = {c.base_ids[base]};
    q.p_at_1 += precision_at_k(ranked, relevant, 1);
    q.mrr += reciprocal_rank(ranked, relevant);
    q.ndcg10 += ndcg_at_k(ranked, relevant, 10);
  }
  q.p_at_1 /= static_cast<double>(queries);
  q.mrr /= static_cast<double>(queries);
  q.ndcg10 /= static_cast<double>(queries);
  return q;
}

// Same metrics over the corpus's own pre-built queries and graded
// judgments — the exact distribution eval/baseline.json gates.
template <typename RankFn>
quality evaluate_corpus_queries(const eval_corpus& c, RankFn&& rank) {
  quality q;
  for (const eval_query& query : c.queries) {
    const std::vector<std::uint32_t> ranked = rank(query.image);
    const std::vector<std::uint32_t> relevant = relevant_ids(query.relevance);
    q.p_at_1 += precision_at_k(ranked, relevant, 1);
    q.mrr += reciprocal_rank(ranked, query.relevance);
    q.ndcg10 += ndcg_at_k(ranked, query.relevance, 10);
  }
  const auto n = static_cast<double>(c.queries.size());
  q.p_at_1 /= n;
  q.mrr /= n;
  q.ndcg10 /= n;
  return q;
}

std::vector<std::uint32_t> ids_of(const std::vector<query_result>& results) {
  std::vector<std::uint32_t> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(r.id);
  return out;
}

void print_belcs_quality_table() {
  print_header("E6a: BE-LCS retrieval quality under query distortion",
               "partial queries still retrieve their source image; scores "
               "degrade smoothly, not to zero");
  const eval_corpus c =
      build_corpus(benchsupport::smoke_cap<std::size_t>(50, 4), 10, false);
  text_table table(
      {"distortion", "P@1", "MRR", "nDCG@10"});
  struct cond {
    const char* name;
    distortion_params d;
  };
  std::vector<cond> conditions;
  conditions.push_back({"exact copy", {}});
  {
    distortion_params d;
    d.keep_fraction = 0.7;
    conditions.push_back({"keep 70% of objects", d});
  }
  {
    distortion_params d;
    d.keep_fraction = 0.5;
    conditions.push_back({"keep 50% of objects", d});
  }
  {
    distortion_params d;
    d.jitter = 8;
    conditions.push_back({"jitter +-8px", d});
  }
  {
    distortion_params d;
    d.keep_fraction = 0.7;
    d.jitter = 8;
    d.decoys = 2;
    d.decoy_shape.max_extent = 64;
    conditions.push_back({"70% + jitter + 2 decoys", d});
  }
  query_options options;
  options.top_k = 0;
  auto rank = [&](const symbolic_image& query) {
    return ids_of(search(c.db, query, options));
  };
  for (const cond& condition : conditions) {
    const quality q = evaluate(
        c, condition.d, benchsupport::smoke_cap<std::size_t>(60, 8), rank);
    table.add_row({condition.name, fmt_double(q.p_at_1, 3),
                   fmt_double(q.mrr, 3), fmt_double(q.ndcg10, 3)});
  }
  {
    // The gate's own query tier, scored with its graded judgments.
    const quality q = evaluate_corpus_queries(c, rank);
    table.add_row({"eval corpus queries (graded)", fmt_double(q.p_at_1, 3),
                   fmt_double(q.mrr, 3), fmt_double(q.ndcg10, 3)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_vs_type_table() {
  print_header("E6b: BE-LCS vs type-2 clique ranking under jitter",
               "exact relation matching (type-2) collapses under geometric "
               "perturbation; LCS keeps ranking the right image first");
  // Small corpus: type-2 exact cliques on every candidate are expensive.
  const eval_corpus c =
      build_corpus(benchsupport::smoke_cap<std::size_t>(10, 2), 8, true);
  text_table table({"jitter px", "BE-LCS P@1", "type-2 P@1", "type-1 P@1"});
  query_options options;
  options.top_k = 0;
  for (int jitter : {0, 4, 8, 16, 32}) {
    distortion_params d;
    d.jitter = jitter;
    const quality lcs_quality =
        evaluate(c, d, benchsupport::smoke_cap<std::size_t>(40, 4), [&](const symbolic_image& query) {
          return ids_of(search(c.db, query, options));
        });
    auto clique_rank = [&](similarity_type level) {
      return [&, level](const symbolic_image& query) {
        std::vector<std::pair<double, std::uint32_t>> scored;
        for (const db_record& rec : c.db.records()) {
          const auto result =
              type_similarity(query, rec.image, {level, 0});
          scored.emplace_back(
              -static_cast<double>(result.matched_objects),
              rec.id);
        }
        std::sort(scored.begin(), scored.end());
        std::vector<std::uint32_t> out;
        for (const auto& [neg, id] : scored) out.push_back(id);
        return out;
      };
    };
    const quality t2 = evaluate(c, d, benchsupport::smoke_cap<std::size_t>(40, 4), clique_rank(similarity_type::type2));
    const quality t1 = evaluate(c, d, benchsupport::smoke_cap<std::size_t>(40, 4), clique_rank(similarity_type::type1));
    table.add_row({std::to_string(jitter), fmt_double(lcs_quality.p_at_1, 3),
                   fmt_double(t2.p_at_1, 3), fmt_double(t1.p_at_1, 3)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_QueryLatency(benchmark::State& state) {
  const eval_corpus c =
      build_corpus(static_cast<std::size_t>(state.range(0)), 10, false);
  alphabet scratch = c.db.symbols();
  distortion_params d;
  d.keep_fraction = 0.7;
  d.seed = 11;
  const symbolic_image query =
      distort(c.db.record(c.base_ids[0]).image, d, scratch);
  query_options options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search(c.db, query, options));
  }
  state.counters["images"] = static_cast<double>(c.db.size());
}
BENCHMARK(BM_QueryLatency)->Arg(10)->Arg(40)->Arg(160)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_belcs_quality_table();
  bes::print_vs_type_table();
  return bes::benchsupport::run_registered(argc, argv);
}
