// E2 — storage cost of the spatial representations (paper §3.1).
//
// Claim: a 2D BE-string needs between 2n (achieved: 2n+1) and 4n+1 tokens
// per axis — O(n) — with NO cutting, while G-/C-string cutting blows up to
// O(n^2) pieces on overlapping scenes.
#include "bench_common.hpp"

#include <filesystem>

#include "baselines/b_string.hpp"
#include "baselines/c_string.hpp"
#include "baselines/g_string.hpp"
#include "baselines/two_d_string.hpp"
#include "core/encoder.hpp"
#include "db/compaction.hpp"
#include "db/group_commit.hpp"
#include "db/shard_storage.hpp"
#include "db/storage.hpp"

namespace bes {
namespace {

using benchsupport::make_scene;
using benchsupport::print_header;

void print_bounds_table() {
  print_header("E2a: BE-string tokens per axis vs the analytic bounds",
               "2n <= tokens <= 4n+1 per axis; best case 2n+1, worst 4n+1");
  text_table table({"n", "best-case", "2n+1", "worst-case", "4n+1",
                    "random(x)", "grid(x)"});
  for (std::size_t n : benchsupport::smoke_sweep({2u, 4u, 8u, 16u, 32u, 64u, 128u}, 16u)) {
    alphabet names;
    const auto best = encode(best_case_scene(n, names));
    const auto worst = encode(worst_case_scene(n, names));
    const auto random = encode(make_scene(n, n, names));
    const auto grid = encode(make_scene(n + 1, n, names, 1024, false, 128));
    table.add_row({std::to_string(n), std::to_string(best.x.size()),
                   std::to_string(2 * n + 1), std::to_string(worst.x.size()),
                   std::to_string(max_axis_tokens(n)),
                   std::to_string(random.x.size()),
                   std::to_string(grid.x.size())});
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_model_comparison_table() {
  print_header(
      "E2b: storage units across representation models (both axes summed)",
      "BE-string O(n) without cutting; G-string cuts superfluously; C-string "
      "still O(n^2) worst case");
  text_table table({"n", "2D-string", "B-string", "BE-string", "C-string-cut",
                    "G-string-cut"});
  for (std::size_t n : benchsupport::smoke_sweep({4u, 8u, 16u, 32u, 64u, 128u}, 16u)) {
    // A dense overlapping scene (small domain relative to object size).
    alphabet names;
    const symbolic_image scene = make_scene(n, n, names, 256);
    const two_d_string twod = build_two_d_string(scene);
    const b_string2d b = build_b_string(scene);
    const be_string2d be = encode(scene);
    table.add_row(
        {std::to_string(n),
         std::to_string(twod.u.symbol_count() + twod.u.operator_count() +
                        twod.v.symbol_count() + twod.v.operator_count()),
         std::to_string(b.storage_units()), std::to_string(be.total_tokens()),
         std::to_string(c_string_segment_count(scene)),
         std::to_string(g_string_segment_count(scene))});
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_staircase_table() {
  print_header("E2c: the cutting worst case (staircase of partial overlaps)",
               "C-string pieces grow O(n^2) while BE-string stays 4n+1");
  text_table table({"n", "BE tokens (x)", "C-string pieces (x)",
                    "G-string pieces (x)"});
  for (int n : benchsupport::smoke_sweep({4, 8, 16, 32, 64}, 16)) {
    alphabet names;
    symbolic_image scene(8 * n + 64, 16);
    for (int i = 0; i < n; ++i) {
      scene.add(names.intern("S" + std::to_string(i)),
                rect::checked(2 * i, 2 * i + n + 5, 0, 5));
    }
    table.add_row(
        {std::to_string(n), std::to_string(encode(scene).x.size()),
         std::to_string(c_string_cut(scene.icons(), axis::x).size()),
         std::to_string(g_string_cut(scene.icons(), axis::x).size())});
  }
  std::fputs(table.str().c_str(), stdout);
}

// E2b of ISSUE 4: on-disk persistence cost of the two db formats. The text
// loader re-runs Convert_2D_Be_String per image; the BSEG1 segment loader
// copies pre-encoded token streams out of the mapping, so its load time is
// the acceptance metric (>= 3x faster at full N).
void print_persistence_table() {
  print_header(
      "E2d: text vs BSEG1 segment persistence (save/load wall time, bytes)",
      "segment load skips the re-encode: >= 3x faster than text load at "
      "full N");
  text_table table({"images", "txt-save-ms", "seg-save-ms", "txt-load-ms",
                    "seg-load-ms", "txt-KB", "seg-KB", "load-speedup"});
  namespace fs = std::filesystem;
  const fs::path text_path =
      fs::temp_directory_path() / "bes_bench_storage.besdb";
  const fs::path seg_path =
      fs::temp_directory_path() / "bes_bench_storage.bseg";
  for (std::size_t n :
       benchsupport::smoke_sweep({64u, 512u, 2048u}, 64u)) {
    image_database db;
    for (std::size_t i = 0; i < n; ++i) {
      db.add("scene" + std::to_string(i),
             make_scene(i + 1, 8, db.symbols(), 256));
    }
    const double text_save = benchsupport::time_per_call(
        [&] { save_database(db, text_path, db_format::text); });
    const double seg_save = benchsupport::time_per_call(
        [&] { save_database(db, seg_path, db_format::binary); });
    const double text_load = benchsupport::time_per_call(
        [&] { benchmark::DoNotOptimize(load_database(text_path)); });
    const double seg_load = benchsupport::time_per_call(
        [&] { benchmark::DoNotOptimize(load_database(seg_path)); });
    const auto text_kb = static_cast<double>(fs::file_size(text_path)) / 1024;
    const auto seg_kb = static_cast<double>(fs::file_size(seg_path)) / 1024;
    table.add_row({std::to_string(n), fmt_double(text_save * 1e3, 2),
                   fmt_double(seg_save * 1e3, 2),
                   fmt_double(text_load * 1e3, 2),
                   fmt_double(seg_load * 1e3, 2), fmt_double(text_kb, 1),
                   fmt_double(seg_kb, 1),
                   fmt_double(text_load / seg_load, 2)});
  }
  fs::remove(text_path);
  fs::remove(seg_path);
  std::fputs(table.str().c_str(), stdout);
}

// E2e of ISSUE 5: SCRP1 sharded corpus persistence. The streaming
// shard_writer appends record-at-a-time (per-record memory, corpus-size
// independent); opening merges the per-shard footers and materializes
// either the partitions (load_sharded_corpus: per-shard dbs + R-trees) or
// the flat database (load_database autodetect). Shard-count scaling shows
// the split costs little over one segment.
void print_sharded_persistence_table() {
  print_header(
      "E2e: SCRP1 sharded corpus (streaming save, merged-footer open)",
      "shard_writer streams record-at-a-time; per-shard footers merge at "
      "open; the flat view round-trips through load_database");
  text_table table({"images", "shards", "stream-save-ms", "open-sharded-ms",
                    "open-flat-ms", "KB"});
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "bes_bench_storage_scrp";
  for (std::size_t n : benchsupport::smoke_sweep({512u, 2048u}, 64u)) {
    image_database db;
    for (std::size_t i = 0; i < n; ++i) {
      db.add("scene" + std::to_string(i),
             make_scene(i + 1, 8, db.symbols(), 256));
    }
    for (std::size_t shards : {1u, 4u, 16u}) {
      const double save = benchsupport::time_per_call([&] {
        shard_writer writer(dir, shards);
        for (const db_record& rec : db.records()) {
          writer.append(rec, db.symbols());
        }
        writer.finish();
      });
      const double open_sharded = benchsupport::time_per_call(
          [&] { benchmark::DoNotOptimize(load_sharded_corpus(dir)); });
      const double open_flat = benchsupport::time_per_call(
          [&] { benchmark::DoNotOptimize(load_database(dir)); });
      double kb = 0.0;
      for (const auto& entry : fs::directory_iterator(dir)) {
        kb += static_cast<double>(fs::file_size(entry.path())) / 1024;
      }
      table.add_row({std::to_string(n), std::to_string(shards),
                     fmt_double(save * 1e3, 2), fmt_double(open_sharded * 1e3, 2),
                     fmt_double(open_flat * 1e3, 2), fmt_double(kb, 1)});
      fs::remove_all(dir);
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

// E2f of ISSUE 9: tombstone compaction. A corpus carrying deletes pays for
// its dead records on every open (they are read, installed, then
// re-tombstoned); compact_corpus folds them out through the rename-aside
// rewrite. The table shows bytes reclaimed and the flat-reopen wall time
// before/after at increasing dead fractions.
void print_compaction_table() {
  print_header(
      "E2f: crash-safe tombstone compaction (bytes reclaimed, reopen time)",
      "compact_corpus folds tombstones via a rename-aside rewrite; the "
      "reopen stops paying for dead records");
  text_table table({"images", "dead%", "KB-before", "KB-after", "reclaimed%",
                    "open-before-ms", "open-after-ms"});
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "bes_bench_storage_compact";
  for (std::size_t n : benchsupport::smoke_sweep({512u, 2048u}, 64u)) {
    for (int dead_pct : {10, 50}) {
      image_database db;
      for (std::size_t i = 0; i < n; ++i) {
        db.add("scene" + std::to_string(i),
               make_scene(i + 1, 8, db.symbols(), 256));
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (static_cast<int>(i % 100) < dead_pct) {
          db.remove(static_cast<image_id>(i));
        }
      }
      fs::remove_all(dir);
      save_sharded(db, dir, 4);
      const double open_before = benchsupport::time_per_call(
          [&] { benchmark::DoNotOptimize(load_sharded_flat(dir)); });
      const compaction_stats stats = compact_corpus(dir);
      const double open_after = benchsupport::time_per_call(
          [&] { benchmark::DoNotOptimize(load_sharded_flat(dir)); });
      const auto kb_before = static_cast<double>(stats.bytes_before) / 1024;
      const auto kb_after = static_cast<double>(stats.bytes_after) / 1024;
      table.add_row(
          {std::to_string(n), std::to_string(dead_pct),
           fmt_double(kb_before, 1), fmt_double(kb_after, 1),
           fmt_double(100.0 * (kb_before - kb_after) / kb_before, 1),
           fmt_double(open_before * 1e3, 2), fmt_double(open_after * 1e3, 2)});
      fs::remove_all(dir);
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

// E2g of ISSUE 11: group-commit batching on the durable-delete path. A
// stream of single deletes through append_tombstones pays one type-4 record
// and one flush+fsync EACH; tombstone_group_commit coalesces deletes that
// arrive within a window into one record and one sync. The table contrasts
// per-delete commits (max_batch = 1, the old behaviour) against grouped
// commits, counting the records and fsyncs actually issued.
void print_group_commit_table() {
  print_header(
      "E2g: group-commit batching for durable deletes (records, fsyncs)",
      "coalescing deletes into one type-4 record + one fsync per window "
      "amortizes the sync cost without weakening durability");
  text_table table({"images", "deletes", "mode", "type4-records", "fsyncs",
                    "ms", "ms/delete"});
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "bes_bench_storage_gc.bseg";
  for (std::size_t n : benchsupport::smoke_sweep({256u, 1024u}, 64u)) {
    image_database db;
    for (std::size_t i = 0; i < n; ++i) {
      db.add("scene" + std::to_string(i),
             make_scene(i + 1, 8, db.symbols(), 256));
    }
    const std::size_t deletes = n / 2;
    struct mode_spec {
      const char* name;
      group_commit_options options;
      bool blocking;  // remove() per delete (forces one batch each) vs
                      // remove_async() + flush() (lets the window coalesce)
    };
    const mode_spec modes[] = {
        {"per-delete", {std::chrono::milliseconds(0), 1, true}, true},
        {"grouped", {std::chrono::milliseconds(2), 256, true}, false},
    };
    for (const mode_spec& mode : modes) {
      fs::remove(path);
      save_segment(db, path);
      group_commit_stats stats;
      const double secs = benchsupport::time_seconds([&] {
        segment_writer writer(path, /*append=*/true);
        tombstone_group_commit commit(writer, mode.options);
        for (std::size_t i = 0; i < deletes; ++i) {
          if (mode.blocking) {
            commit.remove(2 * i);  // every other record dies
          } else {
            commit.remove_async(2 * i);
          }
        }
        commit.flush();
        stats = commit.stats();
        writer.finish();
      });
      table.add_row({std::to_string(n), std::to_string(deletes), mode.name,
                     std::to_string(stats.records), std::to_string(stats.syncs),
                     fmt_double(secs * 1e3, 2),
                     fmt_double(secs * 1e3 / static_cast<double>(deletes), 4)});
    }
    fs::remove(path);
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_EncodeTokens(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const symbolic_image scene = make_scene(1, n, names);
  std::size_t tokens = 0;
  for (auto _ : state) {
    const be_string2d s = encode(scene);
    tokens = s.total_tokens();
    benchmark::DoNotOptimize(tokens);
  }
  state.counters["tokens"] = static_cast<double>(tokens);
  state.counters["tokens_per_object"] =
      static_cast<double>(tokens) / static_cast<double>(n);
}
BENCHMARK(BM_EncodeTokens)->RangeMultiplier(4)->Range(16, 4096);

void BM_GStringCut(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const symbolic_image scene = make_scene(2, n, names, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_string_segment_count(scene));
  }
}
BENCHMARK(BM_GStringCut)->RangeMultiplier(4)->Range(16, 1024);

void BM_CStringCut(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const symbolic_image scene = make_scene(2, n, names, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c_string_segment_count(scene));
  }
}
BENCHMARK(BM_CStringCut)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_bounds_table();
  bes::print_model_comparison_table();
  bes::print_staircase_table();
  bes::print_persistence_table();
  bes::print_sharded_persistence_table();
  bes::print_compaction_table();
  bes::print_group_commit_table();
  return bes::benchsupport::run_registered(argc, argv);
}
