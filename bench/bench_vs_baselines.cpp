// E5 — BE-string LCS similarity vs the type-i clique assessment (paper §2
// vs §4).
//
// Claim: the 2D-string family needs O(n^2) relation pairs plus an
// NP-complete maximum-complete-subgraph search; the modified LCS runs in
// O(mn). The table shows the blow-up of the clique path as n grows while
// the LCS path stays polynomial (who wins: BE-LCS, by orders of magnitude
// at moderate n).
#include "bench_common.hpp"

#include "baselines/type_similarity.hpp"
#include "core/encoder.hpp"
#include "lcs/similarity.hpp"

namespace bes {
namespace {

using benchsupport::make_scene;
using benchsupport::print_header;
using benchsupport::time_per_call;

void print_crossover_table() {
  print_header("E5: query cost, BE-LCS vs type-i maximum clique",
               "LCS O(mn) vs O(n^2) pair graph + NP-complete clique; "
               "duplicate symbols multiply the match graph");
  text_table table({"n", "BE-LCS (us)", "type-2 (us)", "type-1 (us)",
                    "type-0 (us)", "graph vertices", "graph edges"});
  for (std::size_t n : benchsupport::smoke_sweep({4u, 6u, 8u, 12u, 16u, 24u, 32u}, 8u)) {
    alphabet names;
    // Realistic icon vocabularies repeat (two chairs, three trees): each
    // symbol appears ~2x, which is what makes the candidate-match graph —
    // and the NP-complete clique instance — grow superlinearly.
    rng scene_rng(n);
    scene_params scene_cfg;
    scene_cfg.width = 512;
    scene_cfg.height = 512;
    scene_cfg.object_count = n;
    scene_cfg.max_extent = 64;
    scene_cfg.symbol_pool = std::max<std::size_t>(2, n / 2);
    const symbolic_image d = random_scene(scene_cfg, scene_rng, names);
    rng r(n);
    symbolic_image q(d.width(), d.height());
    for (const icon& obj : d.icons()) {
      const int dx = r.uniform_int(-4, 4);
      rect mbr = obj.mbr;
      if (mbr.x.lo + dx >= 0 && mbr.x.hi + dx <= d.width()) {
        mbr.x.lo += dx;
        mbr.x.hi += dx;
      }
      q.add(obj.symbol, mbr);
    }
    const be_string2d qs = encode(q);
    const be_string2d ds = encode(d);

    const double lcs_us =
        1e6 * time_per_call([&] {
          benchmark::DoNotOptimize(similarity(qs, ds));
        });
    double type_us[3] = {0, 0, 0};
    type_similarity_result last;
    for (int level = 0; level < 3; ++level) {
      type_similarity_options options;
      options.level = static_cast<similarity_type>(level);
      type_us[level] = 1e6 * time_per_call([&] {
        last = type_similarity(q, d, options);
        benchmark::DoNotOptimize(last.matched_objects);
      });
    }
    table.add_row({std::to_string(n), fmt_double(lcs_us, 1),
                   fmt_double(type_us[2], 1), fmt_double(type_us[1], 1),
                   fmt_double(type_us[0], 1),
                   std::to_string(last.graph_vertices),
                   std::to_string(last.graph_edges)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "(type-i columns include graph construction + exact Bron-Kerbosch)\n");
}

void print_agreement_table() {
  print_header("E5b: do the two assessments agree on WHO matches?",
               "LCS similarity orders candidates consistently with type-i "
               "object counts on exact/sub-picture queries");
  text_table table({"query kind", "BE-LCS score", "type-2 matched/total"});
  alphabet names;
  const symbolic_image scene = make_scene(77, 10, names, 512, true);
  struct row {
    const char* name;
    symbolic_image query;
  };
  symbolic_image subset(scene.width(), scene.height());
  for (std::size_t i = 0; i < 5; ++i) subset.add(scene.icons()[i]);
  symbolic_image shuffled(scene.width(), scene.height());
  for (const icon& obj : scene.icons()) {
    // Mirror x: every left-right relation flips.
    rect mbr = obj.mbr;
    const int lo = scene.width() - mbr.x.hi;
    const int hi = scene.width() - mbr.x.lo;
    mbr.x = interval{lo, hi};
    shuffled.add(obj.symbol, mbr);
  }
  const std::vector<row> rows = {{"identical", scene},
                                 {"sub-picture (5/10)", subset},
                                 {"x-mirrored", shuffled}};
  for (const row& r : rows) {
    const double lcs = similarity(encode(r.query), encode(scene));
    const auto t2 =
        type_similarity(r.query, scene, {similarity_type::type2, 0});
    table.add_row({r.name, fmt_double(lcs, 3),
                   std::to_string(t2.matched_objects) + "/" +
                       std::to_string(r.query.size())});
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_BeLcsSimilarity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d q = encode(make_scene(1, n, names, 512, true));
  const be_string2d d = encode(make_scene(2, n, names, 512, true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity(q, d));
  }
}
BENCHMARK(BM_BeLcsSimilarity)->DenseRange(8, 40, 8);

void BM_Type1Clique(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const symbolic_image q = make_scene(3, n, names, 512, true);
  const symbolic_image d = make_scene(4, n, names, 512, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        type_similarity(q, d, {similarity_type::type1, 0}).matched_objects);
  }
}
BENCHMARK(BM_Type1Clique)->DenseRange(8, 40, 8)->Unit(benchmark::kMicrosecond);

void BM_Type1CliqueGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const symbolic_image q = make_scene(5, n, names, 512, true);
  const symbolic_image d = make_scene(6, n, names, 512, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        type_similarity(q, d, {similarity_type::type1, 1}).matched_objects);
  }
}
BENCHMARK(BM_Type1CliqueGreedy)
    ->DenseRange(8, 40, 8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_crossover_table();
  bes::print_agreement_table();
  return bes::benchsupport::run_registered(argc, argv);
}
