// E7 — rotation/reflection retrieval by string reversal (paper §4/§5,
// conclusions).
//
// Claim: "our approaches only need to reverse the string then apply the
// similarity retrieval ... This process does not need any conversion of
// spatial operators. It is more efficient and much easier then before."
// We verify all 8 dihedral variants are retrieved with score 1 and compare
// the cost of the string-level transform against geometric re-encoding.
#include "bench_common.hpp"

#include "core/transform.hpp"
#include "db/query.hpp"

namespace bes {
namespace {

using benchsupport::make_scene;
using benchsupport::print_header;
using benchsupport::time_per_call;

void print_recovery_table() {
  print_header("E7a: retrieving every linear transformation of a scene",
               "all 8 variants score 1.0 under best-of-8 string reversal");
  alphabet names;
  const symbolic_image scene = make_scene(42, 10, names, 512);
  image_database db;
  db.symbols() = names;
  // Store every transformed variant plus distractors.
  for (dihedral t : all_dihedral) {
    db.add(std::string(to_string(t)), apply(t, scene));
  }
  rng r(1);
  scene_params params;
  params.width = 512;
  params.height = 512;
  params.object_count = 10;
  params.max_extent = 64;
  for (int i = 0; i < 8; ++i) {
    db.add("distractor" + std::to_string(i),
           random_scene(params, r, db.symbols()));
  }

  text_table table({"stored variant", "plain score", "best-of-8 score",
                    "recovered transform"});
  const be_string2d qs = encode(scene);
  for (std::size_t id = 0; id < 8; ++id) {
    const db_record& rec = db.record(static_cast<image_id>(id));
    const double plain = similarity(qs, rec.strings);
    const transform_match best = best_transform_similarity(qs, rec.strings);
    table.add_row({rec.name, fmt_double(plain, 3), fmt_double(best.score, 3),
                   std::string(to_string(best.transform))});
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_cost_table() {
  print_header("E7b: string reversal vs geometric re-encoding",
               "string transform avoids re-sorting; no operator conversion");
  text_table table({"n", "string transform (us)", "geometric re-encode (us)",
                    "speedup"});
  for (std::size_t n : benchsupport::smoke_sweep({16u, 64u, 256u, 1024u, 4096u}, 64u)) {
    alphabet names;
    const symbolic_image scene = make_scene(n, n, names, 1 << 15);
    const be_string2d s = encode(scene);
    const double string_us = 1e6 * time_per_call([&] {
      benchmark::DoNotOptimize(apply(dihedral::rot90, s));
    });
    const double geom_us = 1e6 * time_per_call([&] {
      benchmark::DoNotOptimize(encode(apply(dihedral::rot90, scene)));
    });
    table.add_row({std::to_string(n), fmt_double(string_us, 1),
                   fmt_double(geom_us, 1),
                   fmt_double(geom_us / string_us, 2) + "x"});
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_StringTransform(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d s = encode(make_scene(1, n, names, 1 << 15));
  for (auto _ : state) {
    benchmark::DoNotOptimize(apply(dihedral::rot90, s));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StringTransform)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_GeometricReencode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const symbolic_image scene = make_scene(2, n, names, 1 << 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode(apply(dihedral::rot90, scene)));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GeometricReencode)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_BestOf8Similarity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d q = encode(make_scene(3, n, names, 4096));
  const be_string2d d = encode(make_scene(4, n, names, 4096));
  for (auto _ : state) {
    benchmark::DoNotOptimize(best_transform_similarity(q, d));
  }
}
BENCHMARK(BM_BestOf8Similarity)->RangeMultiplier(4)->Range(8, 128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_recovery_table();
  bes::print_cost_table();
  return bes::benchsupport::run_registered(argc, argv);
}
