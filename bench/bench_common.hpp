// Shared helpers for the experiment benchmark binaries.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/scene_gen.hpp"

namespace bes::benchsupport {

// Smoke mode (BES_BENCH_SMOKE set): the ctest `bench_smoke` label runs every
// bench binary end to end with sweeps shrunk to a tiny N and the registered
// microbenchmarks skipped, so a full smoke pass takes seconds, not minutes,
// and the benches cannot bit-rot unnoticed.
inline bool smoke() {
  static const bool on = std::getenv("BES_BENCH_SMOKE") != nullptr;
  return on;
}

// `full` normally; at most `tiny` under smoke.
template <typename T>
[[nodiscard]] T smoke_cap(T full, T tiny) {
  return smoke() ? std::min(full, tiny) : full;
}

// Sweep points for an experiment table; smoke drops the points above
// `tiny_max` (always keeping at least the smallest so the table is nonempty).
template <typename T>
[[nodiscard]] std::vector<T> smoke_sweep(std::initializer_list<T> full,
                                         T tiny_max) {
  std::vector<T> out;
  for (T v : full) {
    if (!smoke() || v <= tiny_max || out.empty()) out.push_back(v);
  }
  return out;
}

// Tail call for every bench main(): runs the registered google-benchmarks in
// a normal run, skips them in smoke mode (the experiment tables above have
// already exercised the code paths at tiny N).
inline int run_registered(int argc, char** argv) {
  if (smoke()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Wall-clock seconds of a callable, best effort single shot.
template <typename F>
double time_seconds(F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

// Repeats fn until ~min_seconds elapsed; returns mean seconds per call.
// The default budget shrinks under smoke so tables with many timed cells
// stay fast.
template <typename F>
double time_per_call(F&& fn, double min_seconds = -1.0) {
  if (min_seconds < 0) min_seconds = smoke() ? 0.002 : 0.05;
  double total = 0.0;
  std::size_t calls = 0;
  while (total < min_seconds) {
    total += time_seconds(fn);
    ++calls;
  }
  return total / static_cast<double>(calls);
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

inline symbolic_image make_scene(std::uint64_t seed, std::size_t n,
                                 alphabet& names, int domain = 1024,
                                 bool unique = false, int grid = 0) {
  rng r(seed);
  scene_params params;
  params.width = domain;
  params.height = domain;
  params.object_count = n;
  params.max_extent = std::max(4, domain / 8);
  params.symbol_pool = unique ? n : std::max<std::size_t>(8, n / 4);
  params.unique_symbols = unique;
  params.grid = grid;
  return random_scene(params, r, names);
}

}  // namespace bes::benchsupport
