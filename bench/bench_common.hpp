// Shared helpers for the experiment benchmark binaries.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/scene_gen.hpp"

namespace bes::benchsupport {

// Wall-clock seconds of a callable, best effort single shot.
template <typename F>
double time_seconds(F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

// Repeats fn until ~min_seconds elapsed; returns mean seconds per call.
template <typename F>
double time_per_call(F&& fn, double min_seconds = 0.05) {
  double total = 0.0;
  std::size_t calls = 0;
  while (total < min_seconds) {
    total += time_seconds(fn);
    ++calls;
  }
  return total / static_cast<double>(calls);
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

inline symbolic_image make_scene(std::uint64_t seed, std::size_t n,
                                 alphabet& names, int domain = 1024,
                                 bool unique = false, int grid = 0) {
  rng r(seed);
  scene_params params;
  params.width = domain;
  params.height = domain;
  params.object_count = n;
  params.max_extent = std::max(4, domain / 8);
  params.symbol_pool = unique ? n : std::max<std::size_t>(8, n / 4);
  params.unique_symbols = unique;
  params.grid = grid;
  return random_scene(params, r, names);
}

}  // namespace bes::benchsupport
