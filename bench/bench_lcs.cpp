// E4 — modified-LCS cost (paper §4.1).
//
// Claim: 2D_Be_LCS_Length takes O(mn) time and space, where m and n are the
// object counts of the query and database image. time/(m*n) must stay flat
// across the sweep, and table storage is (4m+2)(4n+2) cells.
#include "bench_common.hpp"

#include "core/encoder.hpp"
#include "lcs/be_lcs.hpp"

namespace bes {
namespace {

using benchsupport::make_scene;
using benchsupport::print_header;
using benchsupport::time_per_call;

void print_scaling_table() {
  print_header("E4: modified-LCS scaling over object counts",
               "O(mn) time and space; time per (m*n) cell stays flat");
  text_table table({"m", "n", "lcs(x) us", "us/(m*n) x1e3", "table cells"});
  for (std::size_t m : benchsupport::smoke_sweep({8u, 32u, 128u}, 32u)) {
    for (std::size_t n : benchsupport::smoke_sweep({8u, 32u, 128u, 512u}, 32u)) {
      alphabet names;
      const be_string2d q = encode(make_scene(m, m, names, 4096));
      const be_string2d d = encode(make_scene(n + 1, n, names, 4096));
      const double seconds = time_per_call(
          [&] { benchmark::DoNotOptimize(be_lcs_length(q.x.span(), d.x.span())); });
      const be_lcs_table w = be_lcs_fill(q.x.span(), d.x.span());
      table.add_row(
          {std::to_string(m), std::to_string(n), fmt_double(seconds * 1e6, 1),
           fmt_double(seconds * 1e9 / static_cast<double>(m * n), 2),
           std::to_string(w.storage_cells())});
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_fidelity_table() {
  // Fidelity note F1 (see EXPERIMENTS.md): the paper's sign-trick DP can
  // underestimate the constrained optimum on tie patterns. Measure how often
  // on realistic encoded scenes.
  print_header("E4b: paper sign-trick DP vs exact two-layer DP",
               "the sign-encoded table matches the true constrained LCS on "
               "essentially all real scene pairs");
  text_table table({"scene pairs", "agree", "paper < exact", "max gap"});
  std::size_t agree = 0;
  std::size_t below = 0;
  std::size_t max_gap = 0;
  const int trials = benchsupport::smoke_cap(300, 10);
  for (int t = 0; t < trials; ++t) {
    alphabet names;
    const be_string2d a =
        encode(make_scene(static_cast<std::uint64_t>(t), 12, names, 256));
    const be_string2d b = encode(
        make_scene(static_cast<std::uint64_t>(t) + 1000, 12, names, 256));
    const std::size_t paper = be_lcs_length(a.x.span(), b.x.span());
    const std::size_t exact = be_lcs_length_exact(a.x.span(), b.x.span());
    if (paper == exact) {
      ++agree;
    } else {
      ++below;
      max_gap = std::max(max_gap, exact - paper);
    }
  }
  table.add_row({std::to_string(trials), std::to_string(agree),
                 std::to_string(below), std::to_string(max_gap)});
  std::fputs(table.str().c_str(), stdout);
}

void BM_BeLcsLength(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d q = encode(make_scene(1, n, names, 8192));
  const be_string2d d = encode(make_scene(2, n, names, 8192));
  for (auto _ : state) {
    benchmark::DoNotOptimize(be_lcs_length(q.x.span(), d.x.span()));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BeLcsLength)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_BeLcsExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d q = encode(make_scene(3, n, names, 8192));
  const be_string2d d = encode(make_scene(4, n, names, 8192));
  for (auto _ : state) {
    benchmark::DoNotOptimize(be_lcs_length_exact(q.x.span(), d.x.span()));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BeLcsExact)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_BeLcsTraceback(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d q = encode(make_scene(5, n, names, 8192));
  const be_string2d d = encode(make_scene(6, n, names, 8192));
  const be_lcs_table w = be_lcs_fill(q.x.span(), d.x.span());
  for (auto _ : state) {
    benchmark::DoNotOptimize(be_lcs_string(q.x.span(), w));
  }
}
BENCHMARK(BM_BeLcsTraceback)->RangeMultiplier(4)->Range(8, 512);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_scaling_table();
  bes::print_fidelity_table();
  return bes::benchsupport::run_registered(argc, argv);
}
