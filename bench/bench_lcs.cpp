// E4 — modified-LCS cost (paper §4.1).
//
// Claim: 2D_Be_LCS_Length takes O(mn) time and space, where m and n are the
// object counts of the query and database image. time/(m*n) must stay flat
// across the sweep. The paper's (4m+2)(4n+2)-cell table survives only in
// be_lcs_fill (traceback); length queries now run the rolling two-row
// kernel, so E4 also measures its speedup over the full fill and its
// O(min(m,n)) scratch, and E4c the early-exit band used by pruned scans.
#include "bench_common.hpp"

#include "core/encoder.hpp"
#include "lcs/be_lcs.hpp"

namespace bes {
namespace {

using benchsupport::make_scene;
using benchsupport::print_header;
using benchsupport::time_per_call;

void print_scaling_table() {
  print_header("E4: modified-LCS scaling over object counts",
               "O(mn) time; length-only queries run the rolling two-row "
               "kernel in O(min(m,n)) scratch instead of the full table");
  text_table table({"m", "n", "fill us", "rolling us", "speedup",
                    "table cells", "scratch B"});
  for (std::size_t m : benchsupport::smoke_sweep({8u, 32u, 128u}, 32u)) {
    for (std::size_t n : benchsupport::smoke_sweep({8u, 32u, 128u, 512u}, 32u)) {
      alphabet names;
      const be_string2d q = encode(make_scene(m, m, names, 4096));
      const be_string2d d = encode(make_scene(n + 1, n, names, 4096));
      // The seed path: allocate and fill the whole (m+1)x(n+1) table, then
      // read the corner — what be_lcs_length did before the rolling kernel.
      const double fill_seconds = time_per_call([&] {
        const be_lcs_table w = be_lcs_fill(q.x.span(), d.x.span());
        benchmark::DoNotOptimize(w.at(q.x.size(), d.x.size()));
      });
      lcs_context ctx;
      const double rolling_seconds = time_per_call([&] {
        benchmark::DoNotOptimize(be_lcs_length(q.x.span(), d.x.span(), ctx));
      });
      const be_lcs_table w = be_lcs_fill(q.x.span(), d.x.span());
      table.add_row(
          {std::to_string(m), std::to_string(n),
           fmt_double(fill_seconds * 1e6, 1),
           fmt_double(rolling_seconds * 1e6, 1),
           fmt_double(fill_seconds / rolling_seconds, 2),
           std::to_string(w.storage_cells()),
           std::to_string(ctx.scratch_bytes())});
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_kernel_table() {
  // The dispatch registry in ascending preference order; the last row of
  // each group is what active_lcs_kernel() picks on this machine (absent a
  // BES_LCS_KERNEL override). Acceptance bar for the bit-parallel variant:
  // >= 4x over the scalar rolling kernel at n >= 64.
  const std::string claim =
      std::string("per-kernel cost of the same exact/weighted queries; "
                  "active kernel on this machine: ") +
      std::string(active_lcs_kernel().name);
  print_header("E4k: LCS kernel variants (CPU dispatch registry)",
               claim.c_str());
  text_table table(
      {"kernel", "n", "exact us", "vs scalar", "weighted us", "vs scalar w"});
  for (std::size_t n :
       benchsupport::smoke_sweep({64u, 128u, 256u, 512u}, 64u)) {
    alphabet names;
    const be_string2d q = encode(make_scene(7, n, names, 8192));
    const be_string2d d = encode(make_scene(8, n, names, 8192));
    double scalar_exact = 0.0;
    double scalar_weighted = 0.0;
    for (const lcs_kernel& k : registered_lcs_kernels()) {
      lcs_context ctx(k);
      const double exact_seconds = time_per_call([&] {
        benchmark::DoNotOptimize(
            be_lcs_length_exact(q.x.span(), d.x.span(), ctx));
      });
      const double weighted_seconds = time_per_call([&] {
        benchmark::DoNotOptimize(
            be_lcs_weighted(q.x.span(), d.x.span(), 0.5, ctx));
      });
      if (k.name == "scalar") {
        scalar_exact = exact_seconds;
        scalar_weighted = weighted_seconds;
      }
      table.add_row({std::string(k.name), std::to_string(n),
                     fmt_double(exact_seconds * 1e6, 1),
                     fmt_double(scalar_exact / exact_seconds, 2),
                     fmt_double(weighted_seconds * 1e6, 1),
                     fmt_double(scalar_weighted / weighted_seconds, 2)});
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_band_table() {
  print_header("E4c: early-exit band on low-similarity pairs",
               "the admissible band (row max + remaining rows) cuts the DP "
               "short once a threshold is unreachable; exact above it");
  text_table table({"n", "threshold", "full us", "banded us", "speedup"});
  for (std::size_t n : benchsupport::smoke_sweep({64u, 256u}, 64u)) {
    alphabet names;
    // Disjoint symbol pools: the true LCS is tiny (dummies only), so a high
    // threshold lets the band bail after a handful of rows.
    const be_string2d q = encode(make_scene(1, n, names, 4096));
    const be_string2d d = encode(make_scene(2, n, names, 4096, true));
    lcs_context ctx;
    const double full = time_per_call([&] {
      benchmark::DoNotOptimize(be_lcs_length(q.x.span(), d.x.span(), ctx));
    });
    const std::size_t shorter = std::min(q.x.size(), d.x.size());
    for (double fraction : {0.5, 0.9}) {
      const auto needed = static_cast<std::size_t>(
          fraction * static_cast<double>(shorter));
      const double banded = time_per_call([&] {
        benchmark::DoNotOptimize(
            be_lcs_length_bounded(q.x.span(), d.x.span(), needed, ctx));
      });
      table.add_row({std::to_string(n),
                     std::to_string(needed) + "/" + std::to_string(shorter),
                     fmt_double(full * 1e6, 1), fmt_double(banded * 1e6, 1),
                     fmt_double(full / banded, 2)});
    }
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_fidelity_table() {
  // Fidelity note F1 (see EXPERIMENTS.md): the paper's sign-trick DP can
  // underestimate the constrained optimum on tie patterns. Measure how often
  // on realistic encoded scenes.
  print_header("E4b: paper sign-trick DP vs exact two-layer DP",
               "the sign-encoded table matches the true constrained LCS on "
               "essentially all real scene pairs");
  text_table table({"scene pairs", "agree", "paper < exact", "max gap"});
  std::size_t agree = 0;
  std::size_t below = 0;
  std::size_t max_gap = 0;
  const int trials = benchsupport::smoke_cap(300, 10);
  for (int t = 0; t < trials; ++t) {
    alphabet names;
    const be_string2d a =
        encode(make_scene(static_cast<std::uint64_t>(t), 12, names, 256));
    const be_string2d b = encode(
        make_scene(static_cast<std::uint64_t>(t) + 1000, 12, names, 256));
    const std::size_t paper = be_lcs_length(a.x.span(), b.x.span());
    const std::size_t exact = be_lcs_length_exact(a.x.span(), b.x.span());
    if (paper == exact) {
      ++agree;
    } else {
      ++below;
      max_gap = std::max(max_gap, exact - paper);
    }
  }
  table.add_row({std::to_string(trials), std::to_string(agree),
                 std::to_string(below), std::to_string(max_gap)});
  std::fputs(table.str().c_str(), stdout);
}

void BM_BeLcsLength(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d q = encode(make_scene(1, n, names, 8192));
  const be_string2d d = encode(make_scene(2, n, names, 8192));
  for (auto _ : state) {
    benchmark::DoNotOptimize(be_lcs_length(q.x.span(), d.x.span()));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BeLcsLength)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_BeLcsExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d q = encode(make_scene(3, n, names, 8192));
  const be_string2d d = encode(make_scene(4, n, names, 8192));
  for (auto _ : state) {
    benchmark::DoNotOptimize(be_lcs_length_exact(q.x.span(), d.x.span()));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BeLcsExact)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_BeLcsLengthBounded(benchmark::State& state) {
  // Banded scoring of a dissimilar pair at 90% of the shorter string — the
  // regime the pruned top-k scan puts the kernel in.
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d q = encode(make_scene(1, n, names, 8192));
  const be_string2d d = encode(make_scene(2, n, names, 8192, true));
  const std::size_t needed =
      std::min(q.x.size(), d.x.size()) * 9 / 10;
  lcs_context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        be_lcs_length_bounded(q.x.span(), d.x.span(), needed, ctx));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BeLcsLengthBounded)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity(benchmark::oN);

void BM_BeLcsTraceback(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const be_string2d q = encode(make_scene(5, n, names, 8192));
  const be_string2d d = encode(make_scene(6, n, names, 8192));
  const be_lcs_table w = be_lcs_fill(q.x.span(), d.x.span());
  for (auto _ : state) {
    benchmark::DoNotOptimize(be_lcs_string(q.x.span(), w));
  }
}
BENCHMARK(BM_BeLcsTraceback)->RangeMultiplier(4)->Range(8, 512);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_scaling_table();
  bes::print_kernel_table();
  bes::print_band_table();
  bes::print_fidelity_table();
  return bes::benchsupport::run_registered(argc, argv);
}
