// E3 — Convert_2D_Be_String construction cost (paper §3.2).
//
// Claim: O(n) beyond the sort; with the sort, O(n log n). The per-object
// cost should stay flat (linear part) with a slowly growing log factor.
#include "bench_common.hpp"

#include "core/encoder.hpp"

namespace bes {
namespace {

using benchsupport::make_scene;
using benchsupport::print_header;
using benchsupport::time_per_call;

void print_scaling_table() {
  print_header("E3: construction time scaling",
               "Convert_2D_Be_String is O(n) ignoring the sort, O(n log n) "
               "with it: time/n grows only logarithmically");
  text_table table({"n", "encode (us)", "us / object", "tokens/axis(avg)"});
  for (std::size_t n : benchsupport::smoke_sweep({64u, 256u, 1024u, 4096u, 16384u}, 256u)) {
    alphabet names;
    const symbolic_image scene = make_scene(n, n, names, 1 << 16);
    be_string2d out;
    const double seconds = time_per_call([&] { out = encode(scene); });
    table.add_row({std::to_string(n), fmt_double(seconds * 1e6, 1),
                   fmt_double(seconds * 1e6 / static_cast<double>(n), 4),
                   std::to_string((out.x.size() + out.y.size()) / 2)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_Encode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const symbolic_image scene = make_scene(7, n, names, 1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode(scene));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
  state.counters["objects_per_s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Encode)->RangeMultiplier(4)->Range(16, 16384)->Complexity();

void BM_BoundaryEventsOnly(benchmark::State& state) {
  // The sort-dominated part in isolation.
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const symbolic_image scene = make_scene(8, n, names, 1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(boundary_events(scene.icons(), axis::x));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BoundaryEventsOnly)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity();

void BM_RenderAxisOnly(benchmark::State& state) {
  // The linear part in isolation (events pre-sorted).
  const auto n = static_cast<std::size_t>(state.range(0));
  alphabet names;
  const symbolic_image scene = make_scene(9, n, names, 1 << 16);
  const auto events = boundary_events(scene.icons(), axis::x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(render_axis(events, scene.width()));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RenderAxisOnly)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_scaling_table();
  return bes::benchsupport::run_registered(argc, argv);
}
