// Ablation — the design choices DESIGN.md §3 calls out:
//   (a) similarity normalization policy (query / max / dice / min),
//   (b) the paper's signed-table LCS vs the exact two-layer DP,
//   (c) candidate filtering: none vs inverted symbol index vs R-tree
//       window prefilter.
// Each knob is evaluated on the same distorted-query corpus so the effects
// are directly comparable.
#include "bench_common.hpp"

#include "db/query.hpp"
#include "lcs/be_lcs.hpp"
#include "db/spatial_index.hpp"
#include "metrics/retrieval.hpp"
#include "workload/query_gen.hpp"

namespace bes {
namespace {

using benchsupport::print_header;
using benchsupport::time_per_call;

struct corpus {
  image_database db;
  std::vector<symbolic_image> scenes;
  std::vector<image_id> targets;
};

corpus build_corpus(std::size_t bases, std::size_t siblings) {
  corpus c;
  rng r(424242);
  scene_params params;
  params.width = 512;
  params.height = 512;
  params.object_count = 10;
  params.max_extent = 96;
  params.symbol_pool = 10;
  for (std::size_t i = 0; i < bases; ++i) {
    c.scenes.push_back(random_scene(params, r, c.db.symbols()));
    c.targets.push_back(c.db.add("s" + std::to_string(i), c.scenes.back()));
    for (std::size_t s = 0; s < siblings; ++s) {
      distortion_params sibling;
      sibling.keep_fraction = 0.8;
      sibling.jitter = 24;
      sibling.decoys = 1;
      sibling.decoy_shape.max_extent = 64;
      c.db.add("s" + std::to_string(i) + "~" + std::to_string(s),
               distort(c.scenes[i], sibling, r, c.db.symbols()));
    }
  }
  return c;
}

double mean_p1(const corpus& c, const query_options& options,
               const distortion_params& distortion, std::size_t queries) {
  rng r(99);
  alphabet scratch = c.db.symbols();
  double total = 0;
  for (std::size_t t = 0; t < queries; ++t) {
    const std::size_t base = t % c.scenes.size();
    const symbolic_image query =
        distort(c.scenes[base], distortion, r, scratch);
    const auto results = search(c.db, query, options);
    const std::vector<std::uint32_t> relevant = {c.targets[base]};
    std::vector<std::uint32_t> ranked;
    for (const auto& res : results) ranked.push_back(res.id);
    total += precision_at_k(ranked, relevant, 1);
  }
  return total / static_cast<double>(queries);
}

void print_norm_ablation() {
  print_header("ABL-a: similarity normalization policy",
               "query-length norm is the partial-match reading; symmetric "
               "norms punish db images with extra content");
  const corpus c = build_corpus(benchsupport::smoke_cap<std::size_t>(60, 8), 3);
  distortion_params partial;
  partial.keep_fraction = 0.5;
  partial.jitter = 6;
  distortion_params cluttered;
  cluttered.decoys = 4;
  cluttered.decoy_shape.max_extent = 64;

  text_table table({"norm", "P@1 partial(50%)", "P@1 cluttered(+4 decoys)"});
  for (auto [name, norm] :
       {std::pair{"query", norm_kind::query}, {"max", norm_kind::max_len},
        {"dice", norm_kind::dice}, {"min", norm_kind::min_len}}) {
    query_options options;
    options.similarity.norm = norm;
    const std::size_t queries = benchsupport::smoke_cap<std::size_t>(40, 8);
    table.add_row({name, fmt_double(mean_p1(c, options, partial, queries), 3),
                   fmt_double(mean_p1(c, options, cluttered, queries), 3)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_lcs_variant_ablation() {
  print_header("ABL-b: paper signed-table LCS vs exact two-layer DP",
               "identical retrieval quality; the exact variant costs about "
               "the same O(mn)");
  const corpus c = build_corpus(benchsupport::smoke_cap<std::size_t>(60, 8), 3);
  distortion_params d;
  d.keep_fraction = 0.6;
  d.jitter = 8;
  text_table table({"LCS variant", "P@1", "query time (ms, 240 images)"});
  for (bool exact : {false, true}) {
    query_options options;
    options.similarity.exact_lcs = exact;
    rng r(5);
    alphabet scratch = c.db.symbols();
    const symbolic_image query = distort(c.scenes[0], d, r, scratch);
    const double ms = 1e3 * time_per_call([&] {
      benchmark::DoNotOptimize(search(c.db, query, options));
    });
    table.add_row({exact ? "exact two-layer" : "paper signed-table",
                   fmt_double(mean_p1(c, options, d, benchsupport::smoke_cap<std::size_t>(40, 8)), 3),
                   fmt_double(ms, 2)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void print_filter_ablation() {
  print_header("ABL-c: candidate filtering before scoring",
               "the inverted symbol index and an R-tree window prefilter "
               "trade recall for scan work");
  const corpus c = build_corpus(benchsupport::smoke_cap<std::size_t>(100, 8), 3);
  const spatial_index spatial(c.db);
  distortion_params d;
  d.keep_fraction = 0.6;
  rng r(31);
  alphabet scratch = c.db.symbols();
  const symbolic_image query = distort(c.scenes[0], d, r, scratch);

  // R-tree prefilter: images with an icon overlapping the query's hull.
  rect hull_box = query.icons().front().mbr;
  for (const icon& obj : query.icons()) {
    hull_box = rect{hull(hull_box.x, obj.mbr.x), hull(hull_box.y, obj.mbr.y)};
  }
  const auto rtree_candidates = spatial.images_overlapping(hull_box);

  query_options full;
  full.use_index = false;
  query_options indexed;

  text_table table({"filter", "candidates", "query time (ms)"});
  const double t_full = 1e3 * time_per_call([&] {
    benchmark::DoNotOptimize(search(c.db, query, full));
  });
  table.add_row({"none (full scan)", std::to_string(c.db.size()),
                 fmt_double(t_full, 2)});
  const double t_index = 1e3 * time_per_call([&] {
    benchmark::DoNotOptimize(search(c.db, query, indexed));
  });
  table.add_row({"inverted symbol index",
                 std::to_string(c.db.candidates(query).size()),
                 fmt_double(t_index, 2)});
  table.add_row({"R-tree window (hull of query)",
                 std::to_string(rtree_candidates.size()), "n/a (prefilter)"});
  std::fputs(table.str().c_str(), stdout);
}

void print_dummy_weight_ablation() {
  print_header("ABL-d: how much do the dummy objects matter?",
               "dummies carry the paper's spatial-relation information; "
               "down-weighting them degrades separation between a true "
               "match and a same-symbols shuffle");
  alphabet names;
  rng r(6);
  scene_params params;
  params.width = 512;
  params.height = 512;
  params.object_count = 10;
  params.max_extent = 96;
  const symbolic_image scene = random_scene(params, r, names);
  // A "shuffle": same icons, relations destroyed by re-placing every MBR.
  symbolic_image shuffled(scene.width(), scene.height());
  for (const icon& obj : scene.icons()) {
    const int w = obj.mbr.x.length();
    const int h = obj.mbr.y.length();
    const int x = r.uniform_int(0, scene.width() - w);
    const int y = r.uniform_int(0, scene.height() - h);
    shuffled.add(obj.symbol, rect{interval{x, x + w}, interval{y, y + h}});
  }
  distortion_params d;
  d.jitter = 6;
  const symbolic_image near_match = distort(scene, d, r, names);

  const be_string2d target = encode(scene);
  const be_string2d near_strings = encode(near_match);
  const be_string2d far_strings = encode(shuffled);

  text_table table({"dummy weight", "score(jittered copy)", "score(shuffle)",
                    "separation"});
  for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto score = [&](const be_string2d& q) {
      const double x_gain = be_lcs_weighted(q.x.span(), target.x.span(), w);
      const double y_gain = be_lcs_weighted(q.y.span(), target.y.span(), w);
      // Normalize by the query's own best possible weighted gain.
      const double x_max = be_lcs_weighted(q.x.span(), q.x.span(), w);
      const double y_max = be_lcs_weighted(q.y.span(), q.y.span(), w);
      return 0.5 * (x_gain / x_max + y_gain / y_max);
    };
    const double near_score = score(near_strings);
    const double far_score = score(far_strings);
    table.add_row({fmt_double(w, 2), fmt_double(near_score, 3),
                   fmt_double(far_score, 3),
                   fmt_double(near_score - far_score, 3)});
  }
  std::fputs(table.str().c_str(), stdout);
}

void BM_SpatialIndexBuild(benchmark::State& state) {
  const corpus c = build_corpus(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    spatial_index index(c.db);
    benchmark::DoNotOptimize(index.indexed_icons());
  }
  state.counters["icons"] = static_cast<double>(spatial_index(c.db).indexed_icons());
}
BENCHMARK(BM_SpatialIndexBuild)->Arg(25)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SpatialIndexWindowQuery(benchmark::State& state) {
  const corpus c = build_corpus(100, 3);
  const spatial_index index(c.db);
  const rect window = rect::checked(100, 300, 100, 300);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.images_overlapping(window));
  }
}
BENCHMARK(BM_SpatialIndexWindowQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bes

int main(int argc, char** argv) {
  bes::print_norm_ablation();
  bes::print_lcs_variant_ablation();
  bes::print_filter_ablation();
  bes::print_dummy_weight_ablation();
  return bes::benchsupport::run_registered(argc, argv);
}
